package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cold-diffusion/cold/internal/faultinject"
)

// TestClusterChaosSoak is the routing tier's survival exam: a 2-shard ×
// 2-replica fleet under a seeded storm of replica kills, restarts and
// slow-replica injection, hammered by concurrent clients on every
// route, with active probing running the whole time.
//
// Invariants asserted:
//
//   - No mixed generations: every 200 whose body names a model_key
//     matches the X-Cold-Model pin stamped on the same response.
//   - Availability: with the degraded fallback armed, the non-5xx
//     fraction of responses stays ≥ 99% through the storm.
//   - The run is race-clean (the CI job runs this under -race).
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	defer faultinject.Reset()

	// 2 shards × 2 replicas, all on the same published model.
	fleet := [][]*fakeReplica{
		{newFakeReplica(t, "m@1", 1), newFakeReplica(t, "m@1", 1)},
		{newFakeReplica(t, "m@1", 1), newFakeReplica(t, "m@1", 1)},
	}
	flat := append(append([]*fakeReplica{}, fleet[0]...), fleet[1]...)

	cfg := fastConfig(fleet...)
	cfg.Seed = 1337
	cfg.HedgeAfter = 25 * time.Millisecond
	cfg.ProbeEvery = 10 * time.Millisecond // aggressive: recovery inside the soak window
	cfg.ProbeTimeout = 100 * time.Millisecond
	cfg.BreakerFailures = 4
	cfg.BreakerCooldown = 50 * time.Millisecond
	cfg.BudgetBurst = 50
	cfg.BudgetRatio = 0.5
	cfg.Fallback = fakeEngine{users: 1 << 20} // never the bottleneck
	rt, front := newTestRouter(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.ProbeAll(ctx)
	rt.StartProbes(ctx)

	// Slow-replica injection: the cluster.forward fault point stalls a
	// fraction of attempts, seeded so runs reproduce.
	var slowMu sync.Mutex
	slowRng := rand.New(rand.NewSource(99))
	faultinject.Set(faultinject.ClusterForward, func(...any) {
		slowMu.Lock()
		stall := slowRng.Float64() < 0.05
		slowMu.Unlock()
		if stall {
			time.Sleep(40 * time.Millisecond)
		}
	})
	defer faultinject.Clear(faultinject.ClusterForward)

	// Kill/restart storm: a seeded goroutine flips replicas down and
	// back up, never taking a whole shard down for long.
	const soak = 3 * time.Second
	storm := make(chan struct{})
	go func() {
		defer close(storm)
		rng := rand.New(rand.NewSource(7))
		deadline := time.Now().Add(soak)
		for time.Now().Before(deadline) {
			victim := flat[rng.Intn(len(flat))]
			victim.down.Store(true)
			time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			victim.down.Store(false)
			time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
		}
	}()

	// Client hammer: concurrent workers across the routed surface.
	routes := []struct{ path, body string }{
		{"/v1/predict/retweet", `{"publisher":1,"candidate":%d,"words":[2,3]}`},
		{"/v1/predict/link", `{"from":%d,"to":9}`},
		{"/v1/predict/time", `{"user":%d,"words":[4]}`},
	}
	var total, server5xx, mixed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for {
				select {
				case <-storm:
					return
				default:
				}
				r := routes[rng.Intn(len(routes))]
				resp, body := post(t, front.URL, r.path, fmt.Sprintf(r.body, rng.Intn(4096)))
				total.Add(1)
				if resp.StatusCode >= 500 {
					server5xx.Add(1)
				}
				if resp.StatusCode == http.StatusOK {
					pinned := resp.Header.Get("X-Cold-Model")
					if got, ok := body["model_key"].(string); ok && pinned != "" && got != pinned {
						mixed.Add(1)
						t.Errorf("mixed generations: body %q vs pinned %q", got, pinned)
					}
				}
				time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	n := total.Load()
	if n < 100 {
		t.Fatalf("soak produced only %d requests; the storm strangled the clients", n)
	}
	if mixed.Load() != 0 {
		t.Fatalf("%d responses mixed model generations", mixed.Load())
	}
	avail := 1 - float64(server5xx.Load())/float64(n)
	t.Logf("soak: %d requests, %d server errors, availability %.4f", n, server5xx.Load(), avail)
	if avail < 0.99 {
		t.Fatalf("availability %.4f under chaos, want ≥ 0.99 (5xx=%d/%d)", avail, server5xx.Load(), n)
	}

	// The fleet heals: once the storm stops, probing readmits everyone.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		up := 0
		for _, shard := range rt.Status().Shards {
			for _, rep := range shard.Replicas {
				if rep.Up {
					up++
				}
			}
		}
		if up == len(flat) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fleet did not fully recover after the storm: %+v", rt.Status())
}
