package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/cold-diffusion/cold/internal/faultinject"
)

// replica is one backend coldserve process, tracked by its base URL.
// Health state is fed from two sides: the active prober (authoritative
// for model generation, degraded and drain state) and passive failure
// accounting from live traffic. Both sides share the consecutive-failure
// counter, so a replica that probes healthy but fails real requests is
// ejected just the same.
type replica struct {
	url   string
	shard int

	mu          sync.Mutex
	up          bool // in rotation
	draining    bool // replica reported drain state; skip immediately
	degraded    bool // replica itself serves from its fallback engine
	brownout    int  // replica's reported brownout ladder level (0..4)
	gen         uint64
	key         string    // opaque model identity from probes/responses
	consecFails int       // consecutive probe or traffic failures
	consecOKs   int       // consecutive probe successes while ejected
	readmitted  time.Time // slow-start ramp anchor; zero when warmed
	lastProbe   time.Time
	lastErr     string
}

// healthzBody is the replica health shape the router consumes; it
// matches what serve's /v1/healthz reports.
type healthzBody struct {
	Status        string `json:"status"`
	Generation    uint64 `json:"generation"`
	ModelKey      string `json:"model_key"`
	Degraded      bool   `json:"degraded"`
	Draining      bool   `json:"draining"`
	BrownoutLevel int    `json:"brownout_level"`
}

// noteFailure records one failed probe or forwarded attempt, ejecting
// the replica after ejectAfter consecutive failures. It reports whether
// this call performed the ejection (for metrics).
func (rep *replica) noteFailure(ejectAfter int, errMsg string) (ejected bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails++
	rep.consecOKs = 0
	rep.lastErr = errMsg
	if rep.up && rep.consecFails >= ejectAfter {
		rep.up = false
		return true
	}
	return false
}

// noteTrafficOK records a usable response from live traffic. Traffic
// success clears the failure run but does not readmit an ejected
// replica — readmission is the prober's call, so a single lucky request
// cannot flap a sick replica back into rotation.
func (rep *replica) noteTrafficOK(gen uint64, key string) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	rep.lastErr = ""
	if gen != 0 {
		rep.gen = gen
	}
	if key != "" {
		rep.key = key
	}
}

// noteProbeOK folds one successful probe into the replica state,
// readmitting an ejected replica after readmitAfter consecutive
// successes (slow-start: the ramp anchor is set so selection admits it
// gradually). It reports whether this call performed the readmission.
func (rep *replica) noteProbeOK(h healthzBody, readmitAfter int, now time.Time) (readmitted bool) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	rep.lastErr = ""
	rep.gen = h.Generation
	rep.key = h.ModelKey
	rep.degraded = h.Degraded
	rep.draining = h.Draining
	rep.brownout = h.BrownoutLevel
	rep.lastProbe = now
	if !rep.up && !h.Draining {
		rep.consecOKs++
		if rep.consecOKs >= readmitAfter {
			rep.up = true
			rep.consecOKs = 0
			rep.readmitted = now
			return true
		}
	}
	return false
}

// notePressure records a deliberate pressure shed (a brownout 503)
// observed from live traffic. The replica is alive — it answered, fast,
// with a verdict — so the failure run clears like any usable response;
// and until the next probe refreshes the true level, the replica is
// assumed browned out at least to minLevel so retries and hedges stop
// selecting it.
func (rep *replica) notePressure(minLevel int) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	rep.lastErr = ""
	if rep.brownout < minLevel {
		rep.brownout = minLevel
	}
}

// snapshot copies the mutable state for selection and status reporting.
func (rep *replica) snapshot() replicaState {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return replicaState{
		up: rep.up, draining: rep.draining, degraded: rep.degraded,
		brownout: rep.brownout,
		gen:      rep.gen, key: rep.key,
		consecFails: rep.consecFails, readmitted: rep.readmitted,
		lastErr: rep.lastErr,
	}
}

type replicaState struct {
	up, draining, degraded bool
	brownout               int
	gen                    uint64
	key                    string
	consecFails            int
	readmitted             time.Time
	lastErr                string
}

// probeOne sends one health probe and folds the result into the replica
// state. The cluster.probe fault point can fail the probe (injected
// error) or delay it (sleeping hook) without a network.
func (rt *Router) probeOne(ctx context.Context, rep *replica) {
	var injected error
	faultinject.Fire(faultinject.ClusterProbe, rep.url, &injected)
	h, err := rt.fetchHealth(ctx, rep)
	if injected != nil {
		err = injected
	}
	if err != nil {
		rt.cfg.Metrics.probed(true)
		if rep.noteFailure(rt.cfg.EjectAfter, err.Error()) {
			rt.cfg.Metrics.ejected()
			rt.cfg.Logf("cluster: ejected replica %s (shard %d): %v", rep.url, rep.shard, err)
		}
		return
	}
	rt.cfg.Metrics.probed(false)
	if rep.noteProbeOK(h, rt.cfg.ReadmitAfter, time.Now()) {
		rt.cfg.Metrics.readmitted()
		rt.cfg.Logf("cluster: readmitted replica %s (shard %d) at generation %d (slow-start %s)",
			rep.url, rep.shard, h.Generation, rt.cfg.SlowStart)
	}
}

// fetchHealth performs the HTTP round trip of one probe. A 503 whose
// body carries draining=true is not an error — it is the replica saying
// goodbye — but any other non-200 is.
func (rt *Router) fetchHealth(ctx context.Context, rep *replica) (healthzBody, error) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.url+"/v1/healthz", nil)
	if err != nil {
		return healthzBody{}, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return healthzBody{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return healthzBody{}, err
	}
	var h healthzBody
	if jerr := json.Unmarshal(raw, &h); jerr != nil && resp.StatusCode == http.StatusOK {
		return healthzBody{}, fmt.Errorf("healthz body does not decode: %w", jerr)
	}
	if resp.StatusCode != http.StatusOK {
		if h.Draining {
			return h, nil
		}
		return healthzBody{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return h, nil
}

// ProbeAll probes every replica once, synchronously, then refreshes the
// fleet gauges. Tests and the smoke harness use it for deterministic
// control; production routers run StartProbes instead.
func (rt *Router) ProbeAll(ctx context.Context) {
	for _, rep := range rt.all {
		rt.probeOne(ctx, rep)
	}
	rt.refreshFleetGauges()
}

// StartProbes launches one probe loop per replica, each sleeping a
// jittered interval (±20%) so a fleet of probers never interrogates a
// replica in lockstep. The loops stop when ctx is done.
func (rt *Router) StartProbes(ctx context.Context) {
	for _, rep := range rt.all {
		go func(rep *replica) {
			for {
				d := float64(rt.cfg.ProbeEvery) * (0.8 + 0.4*rt.rng.Float64())
				t := time.NewTimer(time.Duration(d))
				select {
				case <-ctx.Done():
					t.Stop()
					return
				case <-t.C:
				}
				rt.probeOne(ctx, rep)
				rt.refreshFleetGauges()
			}
		}(rep)
	}
}

// refreshFleetGauges recomputes the up/lagging/hot/majority gauges from
// the current replica states.
func (rt *Router) refreshFleetGauges() {
	key, gen := rt.majority()
	up, lagging, hot := 0, 0, 0
	for _, rep := range rt.all {
		st := rep.snapshot()
		if !st.up || st.draining {
			continue
		}
		up++
		if key != "" && st.key != "" && st.key != key {
			lagging++
		}
		if st.brownout >= hotBrownoutLevel {
			hot++
		}
	}
	rt.cfg.Metrics.fleet(up, lagging, hot, gen)
}

// majority returns the fleet-majority model key and its generation
// number, voting over in-rotation replicas with a known key. Ties break
// toward the higher generation, then lexicographically larger key, so
// the answer is deterministic.
func (rt *Router) majority() (string, uint64) {
	votes := make(map[string]int)
	gens := make(map[string]uint64)
	for _, rep := range rt.all {
		st := rep.snapshot()
		if !st.up || st.draining || st.key == "" {
			continue
		}
		votes[st.key]++
		if st.gen > gens[st.key] {
			gens[st.key] = st.gen
		}
	}
	bestKey, bestVotes := "", 0
	for key, n := range votes {
		switch {
		case n > bestVotes:
			bestKey, bestVotes = key, n
		case n == bestVotes:
			if gens[key] > gens[bestKey] || (gens[key] == gens[bestKey] && key > bestKey) {
				bestKey = key
			}
		}
	}
	return bestKey, gens[bestKey]
}
