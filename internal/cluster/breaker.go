package cluster

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-shard circuit breaker. Closed passes everything and
// counts consecutive forwarding failures; at the threshold it opens for
// a jittered cooldown, during which requests are shed immediately (the
// router answers 503 + Retry-After, or falls back to the degraded
// engine) instead of queueing against a dead shard. After the cooldown
// it half-opens and admits a bounded number of probe requests: one
// success closes it, one failure re-opens it for another cooldown.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open duration before half-opening
	probes    int           // concurrent trial requests admitted half-open

	// now and jitter are injectable for tests; defaults are time.Now and
	// a seeded router-wide source.
	now    func() time.Time
	jitter func() float64 // uniform [0,1)

	mu       sync.Mutex
	state    breakerState
	fails    int       // consecutive failures while closed
	until    time.Time // open deadline
	inFlight int       // admitted half-open probes awaiting a verdict

	onOpen func() // metrics hook, called outside the lock
}

func newBreaker(threshold int, cooldown time.Duration, probes int, jitter func() float64, onOpen func()) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if probes <= 0 {
		probes = 1
	}
	if jitter == nil {
		jitter = func() float64 { return 0.5 }
	}
	if onOpen == nil {
		onOpen = func() {}
	}
	return &breaker{threshold: threshold, cooldown: cooldown, probes: probes,
		now: time.Now, jitter: jitter, onOpen: onOpen}
}

// allow reports whether a request may be forwarded. When it is not, the
// returned duration is the suggested Retry-After: the remaining open
// window, or a fraction of the cooldown when half-open capacity is
// taken.
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if rem := b.until.Sub(b.now()); rem > 0 {
			return false, rem
		}
		b.state = breakerHalfOpen
		b.inFlight = 1
		return true, 0
	default: // half-open
		if b.inFlight < b.probes {
			b.inFlight++
			return true, 0
		}
		return false, b.cooldown / 4
	}
}

// onSuccess records a forwarded request that got a usable answer. Any
// success closes the breaker and clears the failure run.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.inFlight = 0
	}
	b.state = breakerClosed
	b.fails = 0
}

// onFailure records a request whose every attempt failed. The cooldown
// is jittered ±25% so a fleet of routers that opened together does not
// re-probe the shard in lockstep.
func (b *breaker) onFailure() {
	b.mu.Lock()
	opened := false
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open()
			opened = true
		}
	case breakerHalfOpen:
		b.open()
		opened = true
	case breakerOpen:
		// A straggler attempt admitted before the open; nothing to do.
	}
	b.mu.Unlock()
	if opened {
		b.onOpen()
	}
}

// open transitions to open; caller holds the lock.
func (b *breaker) open() {
	b.state = breakerOpen
	b.fails = 0
	b.inFlight = 0
	d := float64(b.cooldown) * (0.75 + 0.5*b.jitter())
	b.until = b.now().Add(time.Duration(d))
}

// current reports the state for the status endpoint.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
