// Package cluster is the fault-tolerant sharded serving tier: a
// shard-by-user router that fronts N coldserve replicas and survives the
// failures any one of them is having.
//
// The routing contract is deterministic: ShardOf hashes the interned
// user index onto a shard, every request is forwarded to a replica of
// that shard, and the same function gates request admission on the
// replicas themselves (serve.Config.ShardOwner), so a misconfigured
// fleet fails loudly with 421 instead of silently answering from the
// wrong partition.
//
// The forwarding path is hardened in layers:
//
//   - Health: every replica is actively probed at a jittered interval
//     (/v1/healthz, which reports model generation, degraded state and
//     drain state). Consecutive failures eject a replica from rotation;
//     recovery readmits it through a slow-start ramp so a cold process
//     is not instantly buried. Live traffic feeds the same failure
//     accounting, so a replica that probes healthy but fails requests
//     is ejected too.
//
//   - Retries: failed attempts are retried on another replica of the
//     same shard with exponential backoff and full jitter, gated by a
//     token retry budget — a fleet-wide brownout cannot be amplified
//     into a retry storm, because retries are capped at a fraction of
//     the request rate.
//
//   - Hedging: optionally, a request that has not answered within the
//     hedge delay fires a second attempt at a different replica of the
//     shard; the first response wins and the loser is cancelled.
//     Hedges draw from the same retry budget.
//
//   - Circuit breaking: each shard has a closed/open/half-open breaker.
//     While open, requests are shed immediately with 503 + Retry-After
//     (or answered degraded, below) instead of queueing against a dead
//     shard; half-open admits a bounded number of probes before fully
//     closing.
//
//   - Generation-skew guard: the router tracks each replica's reported
//     model generation (an opaque model key derived from the loaded
//     artefact). Each request is pinned to the fleet-majority key at
//     admission; replicas on another key are marked lagging and are not
//     eligible, and a response that comes back with a different key
//     (the replica reloaded mid-request) is discarded and retried. One
//     request is never answered from mixed generations.
//
//   - Last-resort degradation: when no replica of a shard is usable,
//     the router answers from a popularity-prior fallback engine with
//     an honest degraded marker, instead of erroring.
//
// Everything is instrumented under cold_cluster_* (see Metrics) and the
// cluster.probe / cluster.forward / cluster.hedge fault-injection
// points.
package cluster

import (
	"encoding/binary"
	"hash/fnv"
)

// ShardOf is the fleet-wide user→shard assignment: FNV-1a over the
// little-endian interned user index, mod the shard count. It is the one
// contract shared by the router (to pick a shard) and the replicas (to
// refuse users they do not own), so it must never change for a running
// fleet. shards <= 1 means a single shard owns everything.
func ShardOf(user, shards int) int {
	if shards <= 1 {
		return 0
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(int64(user)))
	h := fnv.New64a()
	h.Write(b[:])
	return int(h.Sum64() % uint64(shards))
}
