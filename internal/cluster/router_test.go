package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
)

// fakeReplica is a scriptable coldserve stand-in: it answers the /v1
// surface with the serve-shaped JSON the router consumes, and can be
// "killed" (connections reset mid-flight, like a dead process), made to
// fail with 500s, slowed down, drained, or moved to another model
// generation — all without rebinding ports.
type fakeReplica struct {
	srv      *httptest.Server
	down     atomic.Bool
	fail     atomic.Bool
	drain    atomic.Bool
	shed     atomic.Bool  // answer predictions with a fast brownout 503
	brownout atomic.Int64 // brownout level reported by /v1/healthz
	delay    atomic.Int64 // nanoseconds before answering
	gen      atomic.Uint64
	key      atomic.Value // string
	hits     atomic.Int64 // prediction requests that reached this replica

	lastPriority atomic.Value // string: last X-Cold-Priority seen
	lastDeadline atomic.Value // string: last X-Cold-Deadline-Ms seen
}

func newFakeReplica(t *testing.T, key string, gen uint64) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.key.Store(key)
	f.gen.Store(gen)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			// A dead process resets the connection; Hijack+close is the
			// closest a live test server gets.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server must support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		switch {
		case r.URL.Path == "/v1/healthz":
			code := http.StatusOK
			status := "ok"
			if f.drain.Load() {
				code, status = http.StatusServiceUnavailable, "draining"
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]any{
				"status": status, "uptime_s": 1.0,
				"generation": f.gen.Load(), "model_key": f.key.Load().(string),
				"degraded": false, "draining": f.drain.Load(),
				"brownout_level": f.brownout.Load(),
			})
		case strings.HasPrefix(r.URL.Path, "/v1/predict/") || r.URL.Path == "/v1/topics":
			f.hits.Add(1)
			f.lastPriority.Store(r.Header.Get("X-Cold-Priority"))
			f.lastDeadline.Store(r.Header.Get("X-Cold-Deadline-Ms"))
			if f.shed.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				io.WriteString(w, `{"error":{"code":"brownout","message":"brownout L3: rank traffic is shed until pressure drops"}}`)
				return
			}
			if f.fail.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				io.WriteString(w, `{"error":{"code":"internal","message":"injected"}}`)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"score": 0.5, "generation": f.gen.Load(),
				"model_key": f.key.Load().(string), "degraded": false,
			})
		case r.URL.Path == "/v1/score/batch":
			f.hits.Add(1)
			if f.fail.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				io.WriteString(w, `{"error":{"code":"internal","message":"injected"}}`)
				return
			}
			var in struct {
				Items []struct {
					Kind      string `json:"kind"`
					Candidate int    `json:"candidate"`
					From      int    `json:"from"`
					User      int    `json:"user"`
				} `json:"items"`
			}
			json.NewDecoder(r.Body).Decode(&in)
			// Echo each item's routing user back as its value, so merge
			// tests can see exactly which input slot an answer landed in.
			results := make([]map[string]any, len(in.Items))
			for i, it := range in.Items {
				switch it.Kind {
				case "time":
					results[i] = map[string]any{"status": "ok", "slice": it.User}
				case "link":
					results[i] = map[string]any{"status": "ok", "score": float64(it.From)}
				default:
					results[i] = map[string]any{"status": "ok", "score": float64(it.Candidate)}
				}
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"results": results, "generation": f.gen.Load(),
				"model_key": f.key.Load().(string), "degraded": false,
			})
		case strings.HasPrefix(r.URL.Path, "/v1/rank/"):
			f.hits.Add(1)
			if f.fail.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				io.WriteString(w, `{"error":{"code":"internal","message":"injected"}}`)
				return
			}
			user, _ := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/v1/rank/"))
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"user":       user,
				"candidates": []map[string]any{{"user": user + 1, "score": 0.5}},
				"generation": f.gen.Load(), "model_key": f.key.Load().(string),
			})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// fastConfig returns a Config with test-speed timings over the given
// fake replica topology; probes stay manual (huge interval) so tests
// drive them deterministically with ProbeAll.
func fastConfig(shards ...[]*fakeReplica) Config {
	cfg := Config{
		RequestTimeout: 2 * time.Second,
		AttemptTimeout: 500 * time.Millisecond,
		MaxAttempts:    3,
		RetryBase:      time.Millisecond,
		RetryMax:       5 * time.Millisecond,
		ProbeEvery:     time.Hour,
		ProbeTimeout:   500 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
		SlowStart:      time.Millisecond, // warmed nearly instantly
		BudgetBurst:    100,              // ample unless a test shrinks it
	}
	for _, pool := range shards {
		var urls []string
		for _, f := range pool {
			urls = append(urls, f.srv.URL)
		}
		cfg.Shards = append(cfg.Shards, urls)
	}
	return cfg
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front
}

// post sends one routed prediction request and returns the response
// with its decoded body.
func post(t *testing.T, url, path string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("response %s does not decode: %v\n%s", resp.Status, err, raw)
		}
	}
	return resp, decoded
}

// userForShard finds a user id that ShardOf assigns to the wanted shard.
func userForShard(want, shards int) int {
	for u := 0; ; u++ {
		if ShardOf(u, shards) == want {
			return u
		}
	}
}

func TestRouterForwardsByUserShard(t *testing.T) {
	s0 := newFakeReplica(t, "m@1", 1)
	s1 := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{s0}, []*fakeReplica{s1}))
	rt.ProbeAll(context.Background())

	for shard, rep := range []*fakeReplica{s0, s1} {
		user := userForShard(shard, 2)
		resp, body := post(t, front.URL, "/v1/predict/link",
			fmt.Sprintf(`{"from":%d,"to":1}`, user))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d request: %s", shard, resp.Status)
		}
		if got := resp.Header.Get("X-Cold-Shard"); got != fmt.Sprint(shard) {
			t.Fatalf("X-Cold-Shard = %q, want %d", got, shard)
		}
		if body["model_key"] != "m@1" {
			t.Fatalf("model_key = %v, want the fleet key", body["model_key"])
		}
		if rep.hits.Load() == 0 {
			t.Fatalf("shard %d's replica never saw the request", shard)
		}
	}
	// The other shard's replica must not have answered its neighbour's
	// traffic.
	if s0.hits.Load() != 1 || s1.hits.Load() != 1 {
		t.Fatalf("hits = %d/%d, want exactly one each", s0.hits.Load(), s1.hits.Load())
	}
}

func TestRouterRetriesToHealthyReplica(t *testing.T) {
	bad := newFakeReplica(t, "m@1", 1)
	good := newFakeReplica(t, "m@1", 1)
	bad.fail.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{bad, good})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	// Whichever replica round-robin tries first, every request must land
	// on a 200 — a single failing replica costs retries, not errors.
	for i := 0; i < 6; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/retweet", `{"publisher":0,"candidate":2,"words":[1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s, want 200 via retry", i, resp.Status)
		}
	}
	if got := cfg.Metrics.Retries.Value(); got == 0 {
		t.Fatal("expected at least one retry to be recorded")
	}
}

func TestRouterRetryBudgetBoundsAmplification(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	a.fail.Store(true)
	b.fail.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{a, b})
	cfg.Metrics = NewMetrics(reg)
	cfg.BudgetBurst = 1
	cfg.BudgetRatio = 0.001 // effectively no earn-back inside the test
	cfg.BreakerFailures = 1000
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	for i := 0; i < 8; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if got := cfg.Metrics.BudgetExhausted.Value(); got == 0 {
		t.Fatal("expected the retry budget to report exhaustion under sustained failure")
	}
	// 8 requests, budget 1: retries are capped near the burst, far below
	// the MaxAttempts-1 per request a budgetless router would fire.
	if retries := cfg.Metrics.Retries.Value(); retries > 3 {
		t.Fatalf("retries = %v with budget 1; the budget is not limiting amplification", retries)
	}
}

func TestRouterBreakerShedsWithRetryAfter(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{a, b})
	cfg.Metrics = NewMetrics(reg)
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = time.Minute // stays open for the whole test
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())
	a.fail.Store(true)
	b.fail.Store(true)

	// Drive the breaker open: whole-request failures, threshold 2.
	for i := 0; i < 3; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if got := cfg.Metrics.BreakerOpens.Value(); got == 0 {
		t.Fatal("breaker never opened under total shard failure")
	}

	// Open breaker: immediate shed with 503 + Retry-After, no queueing
	// against the dead shard.
	before := a.hits.Load() + b.hits.Load()
	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != "breaker_open" {
		t.Fatalf("shed code = %v, want breaker_open", errObj["code"])
	}
	if after := a.hits.Load() + b.hits.Load(); after != before {
		t.Fatalf("shed request still reached the replicas (%d → %d hits)", before, after)
	}
	if got := cfg.Metrics.BreakerShed.Value(); got == 0 {
		t.Fatal("breaker shed not recorded")
	}
}

func TestRouterHedgingWinsTail(t *testing.T) {
	slow := newFakeReplica(t, "m@1", 1)
	fast := newFakeReplica(t, "m@1", 1)
	slow.delay.Store(int64(300 * time.Millisecond))
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{slow, fast})
	cfg.Metrics = NewMetrics(reg)
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.Seed = 42
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	// Enough requests that round-robin lands the primary on the slow
	// replica at least once; those hedge to the fast one and win.
	start := time.Now()
	for i := 0; i < 4; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/time", `{"user":3,"words":[1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s", i, resp.Status)
		}
	}
	if cfg.Metrics.Hedges.Value() == 0 || cfg.Metrics.HedgeWins.Value() == 0 {
		t.Fatalf("hedges = %v wins = %v; expected the slow primary to be hedged around",
			cfg.Metrics.Hedges.Value(), cfg.Metrics.HedgeWins.Value())
	}
	// 4 requests at ≥300ms each would be ≥1.2s unhedged; winning hedges
	// must have cut well into that.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("hedged run took %v; hedges are not cutting the tail", took)
	}
}

func TestRouterGenerationSkewGuard(t *testing.T) {
	// Replica A reloaded to m@2; replica B lags on m@1. With one vote
	// each the tie breaks to the higher generation — requests pin to
	// m@2 and only A may answer them.
	ahead := newFakeReplica(t, "m@2", 2)
	behind := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{ahead, behind})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	if key, gen := rt.majority(); key != "m@2" || gen != 2 {
		t.Fatalf("majority = %q gen %d, want m@2 gen 2", key, gen)
	}
	for i := 0; i < 6; i++ {
		resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s", i, resp.Status)
		}
		if body["model_key"] != "m@2" {
			t.Fatalf("request %d answered from %v; generations mixed", i, body["model_key"])
		}
		if resp.Header.Get("X-Cold-Model") != "m@2" {
			t.Fatalf("X-Cold-Model = %q, want the pinned key", resp.Header.Get("X-Cold-Model"))
		}
	}
	if behind.hits.Load() != 0 {
		t.Fatalf("lagging replica answered %d requests; selection must skip it", behind.hits.Load())
	}
	// The fleet gauges report the laggard.
	rt.refreshFleetGauges()
	if got := cfg.Metrics.ReplicasLagging.Value(); got != 1 {
		t.Fatalf("replicas_lagging = %v, want 1", got)
	}

	// A replica that flips generations AFTER the probe (reload raced the
	// request) has its response discarded, not returned: skew guard at
	// the response side.
	ahead.key.Store("m@3")
	ahead.gen.Store(3)
	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode == http.StatusOK && body["model_key"] != nil {
		// Whatever the router did — retried into a 503 or answered after
		// re-pinning — it must never hand back a key that mismatches the
		// X-Cold-Model pin.
		if hdr := resp.Header.Get("X-Cold-Model"); hdr != "" && body["model_key"] != hdr {
			t.Fatalf("body key %v mismatches pinned header %q", body["model_key"], hdr)
		}
	}
	if got := cfg.Metrics.SkewDiscards.Value(); got == 0 {
		t.Fatal("generation-skew discard not recorded")
	}
}

// fakeEngine is a minimal serve.Engine for fallback tests.
type fakeEngine struct{ users int }

func (f fakeEngine) Info() serve.ModelInfo { return serve.ModelInfo{Users: f.users, Degraded: true} }

func (f fakeEngine) ScoreBatch(_ context.Context, reqs []serve.ScoreRequest) []serve.ScoreResult {
	out := make([]serve.ScoreResult, len(reqs))
	for i, req := range reqs {
		switch req.Kind {
		case serve.KindRetweet:
			out[i].Score = 0.25
		case serve.KindLink:
			out[i].Score = 0.125
		case serve.KindTime:
			out[i].Slice = 2
		default:
			out[i].Err = serve.ErrDegraded
		}
	}
	return out
}

func (f fakeEngine) Rank(int, int) ([]core.RankedCandidate, error) {
	return nil, serve.ErrDegraded
}

func TestRouterFallsBackDegraded(t *testing.T) {
	dead := newFakeReplica(t, "m@1", 1)
	dead.down.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{dead})
	cfg.Metrics = NewMetrics(reg)
	cfg.Fallback = fakeEngine{users: 100}
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback answer: %s, want degraded 200", resp.Status)
	}
	if body["degraded"] != true {
		t.Fatalf("fallback response not marked degraded: %v", body)
	}
	if body["model_key"] != "fallback" || resp.Header.Get("X-Cold-Model") != "fallback" {
		t.Fatalf("fallback identity missing: key=%v header=%q", body["model_key"], resp.Header.Get("X-Cold-Model"))
	}
	if body["score"] != 0.125 {
		t.Fatalf("score = %v, want the fallback engine's answer", body["score"])
	}
	if cfg.Metrics.DegradedAnswers.Value() == 0 {
		t.Fatal("degraded answer not recorded")
	}

	// Topics cannot be served by the popularity prior: honest 503, not a
	// made-up answer.
	resp, _ = post(t, front.URL, "/v1/topics", `{"user":0,"words":[1]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("topics under fallback: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("topics shed lacks Retry-After")
	}
}

func TestRouterPassesClientErrorsThrough(t *testing.T) {
	rep := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{rep}))
	rt.ProbeAll(context.Background())

	// Missing routing field: rejected at the router, no forward.
	resp, body := post(t, front.URL, "/v1/predict/link", `{"to":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing field: %s, want 400", resp.Status)
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != "bad_request" {
		t.Fatalf("error code = %v", errObj["code"])
	}
	if rep.hits.Load() != 0 {
		t.Fatal("unroutable request was forwarded anyway")
	}

	// Unknown endpoints answer the envelope.
	r2, err := http.Get(front.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %s", r2.Status)
	}
	var envl map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&envl); err != nil {
		t.Fatalf("404 body is not the JSON envelope: %v", err)
	}
}

func TestRouterEjectionAndReadmission(t *testing.T) {
	flaky := newFakeReplica(t, "m@1", 1)
	steady := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{flaky, steady})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	ctx := context.Background()
	rt.ProbeAll(ctx)

	// Kill the flaky replica; EjectAfter=2 consecutive probe failures
	// eject it.
	flaky.down.Store(true)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx)
	if cfg.Metrics.Ejections.Value() == 0 {
		t.Fatal("dead replica was not ejected by probing")
	}
	if got := cfg.Metrics.ReplicasUp.Value(); got != 1 {
		t.Fatalf("replicas_up = %v after ejection, want 1", got)
	}
	// Traffic keeps flowing through the survivor without retries against
	// the ejected corpse.
	steadyBefore := steady.hits.Load()
	for i := 0; i < 4; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with one replica down: %s", i, resp.Status)
		}
	}
	if steady.hits.Load()-steadyBefore != 4 {
		t.Fatalf("survivor served %d of 4", steady.hits.Load()-steadyBefore)
	}

	// Recovery: ReadmitAfter=2 consecutive probe successes readmit it
	// (slow-start, but the test window is 1ms so it warms immediately).
	flaky.down.Store(false)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx)
	if cfg.Metrics.Readmissions.Value() == 0 {
		t.Fatal("recovered replica was not readmitted")
	}
	if got := cfg.Metrics.ReplicasUp.Value(); got != 2 {
		t.Fatalf("replicas_up = %v after readmission, want 2", got)
	}
	time.Sleep(2 * time.Millisecond) // past the slow-start window
	flakyBefore := flaky.hits.Load()
	for i := 0; i < 8; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if flaky.hits.Load() == flakyBefore {
		t.Fatal("readmitted replica never received traffic again")
	}
}

func TestRouterStatusEndpoint(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{a}, []*fakeReplica{b}))
	rt.ProbeAll(context.Background())

	resp, err := http.Get(front.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("status shards = %d, want 2", len(st.Shards))
	}
	for _, shard := range st.Shards {
		if shard.Breaker != "closed" {
			t.Fatalf("shard %d breaker = %q, want closed", shard.Index, shard.Breaker)
		}
		for _, rep := range shard.Replicas {
			if !rep.Up || rep.ModelKey != "m@1" {
				t.Fatalf("replica state %+v, want up on m@1", rep)
			}
		}
	}
	if st.MajorityModelKey != "m@1" || st.RetryBudgetTokens <= 0 {
		t.Fatalf("status = %+v, want majority m@1 and a positive budget", st)
	}
}

// shardedUsers returns one user owned by shard 0 and one by shard 1.
func shardedUsers(t *testing.T) (int, int) {
	t.Helper()
	u0, u1 := -1, -1
	for j := 0; j < 64 && (u0 < 0 || u1 < 0); j++ {
		if ShardOf(j, 2) == 0 && u0 < 0 {
			u0 = j
		}
		if ShardOf(j, 2) == 1 && u1 < 0 {
			u1 = j
		}
	}
	if u0 < 0 || u1 < 0 {
		t.Fatal("could not find users for both shards")
	}
	return u0, u1
}

// TestRouterBatchSplitsAndMerges pins the scatter/gather contract: one
// client batch becomes one sub-batch per owning shard, and the merged
// response preserves input order item for item — including error slots
// for items that never left the router.
func TestRouterBatchSplitsAndMerges(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{a}, []*fakeReplica{b})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())
	u0, u1 := shardedUsers(t)

	body := fmt.Sprintf(`{"items":[
		{"kind":"retweet","publisher":0,"candidate":%d,"words":[1]},
		{"kind":"link","from":%d,"to":0},
		{"kind":"bogus"},
		{"kind":"time","user":%d,"words":[1]}]}`, u0, u1, u1)
	resp, got := post(t, front.URL, "/v1/score/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %s, want 200", resp.Status)
	}
	results, ok := got["results"].([]any)
	if !ok || len(results) != 4 {
		t.Fatalf("results = %#v, want 4 slots", got["results"])
	}
	r0 := results[0].(map[string]any)
	if r0["status"] != "ok" || r0["score"] != float64(u0) {
		t.Fatalf("slot 0 = %#v, want shard-0 echo of candidate %d", r0, u0)
	}
	r1 := results[1].(map[string]any)
	if r1["status"] != "ok" || r1["score"] != float64(u1) {
		t.Fatalf("slot 1 = %#v, want shard-1 echo of from %d", r1, u1)
	}
	r2 := results[2].(map[string]any)
	if r2["status"] != "error" {
		t.Fatalf("slot 2 = %#v, want router-side error slot", r2)
	}
	r3 := results[3].(map[string]any)
	if r3["status"] != "ok" || r3["slice"] != float64(u1) {
		t.Fatalf("slot 3 = %#v, want shard-1 echo of user %d", r3, u1)
	}
	if got["model_key"] != "m@1" || got["degraded"] != false {
		t.Fatalf("batch envelope = %#v, want model m@1 not degraded", got)
	}
	if a.hits.Load() != 1 || b.hits.Load() != 1 {
		t.Fatalf("sub-batches hit a=%d b=%d, want exactly one each", a.hits.Load(), b.hits.Load())
	}
	if v := cfg.Metrics.requests["batch"].Value(); v != 1 {
		t.Fatalf("batch route counter = %d, want 1", v)
	}
}

// TestRouterBatchDegradedItems: a dead shard fails only its own items,
// and those answer from the fallback engine where it can.
func TestRouterBatchDegradedItems(t *testing.T) {
	dead := newFakeReplica(t, "m@1", 1)
	dead.down.Store(true)
	live := newFakeReplica(t, "m@1", 1)
	cfg := fastConfig([]*fakeReplica{dead}, []*fakeReplica{live})
	cfg.Fallback = fakeEngine{users: 1 << 20}
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())
	u0, u1 := shardedUsers(t)

	body := fmt.Sprintf(`{"items":[
		{"kind":"retweet","publisher":0,"candidate":%d,"words":[1]},
		{"kind":"topics","user":%d,"post":0},
		{"kind":"link","from":%d,"to":0}]}`, u0, u0, u1)
	resp, got := post(t, front.URL, "/v1/score/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %s, want 200", resp.Status)
	}
	results := got["results"].([]any)
	r0 := results[0].(map[string]any)
	if r0["status"] != "ok" || r0["score"] != 0.25 || r0["degraded"] != true {
		t.Fatalf("slot 0 = %#v, want fallback retweet score 0.25 marked degraded", r0)
	}
	r1 := results[1].(map[string]any)
	if r1["status"] != "error" {
		t.Fatalf("slot 1 = %#v, want error (no fallback topic model)", r1)
	}
	r2 := results[2].(map[string]any)
	if r2["status"] != "ok" || r2["score"] != float64(u1) || r2["degraded"] != nil {
		t.Fatalf("slot 2 = %#v, want live shard-1 answer", r2)
	}
	if got["degraded"] != true {
		t.Fatalf("batch envelope degraded = %v, want true", got["degraded"])
	}
}

// TestRouterForwardsRank: rank requests route on the path's user and
// shed (never degrade) when the owning shard is unusable.
func TestRouterForwardsRank(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	cfg := fastConfig([]*fakeReplica{a}, []*fakeReplica{b})
	cfg.Fallback = fakeEngine{users: 1 << 20} // must still not answer rank
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())
	_, u1 := shardedUsers(t)

	resp, err := http.Get(front.URL + "/v1/rank/" + strconv.Itoa(u1) + "?k=3")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got["user"] != float64(u1) {
		t.Fatalf("rank = %s %#v, want 200 for user %d", resp.Status, got, u1)
	}
	if a.hits.Load() != 0 || b.hits.Load() != 1 {
		t.Fatalf("rank hits a=%d b=%d, want shard 1 only", a.hits.Load(), b.hits.Load())
	}

	if resp, err = http.Get(front.URL + "/v1/rank/notanumber"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rank user = %s, want 400", resp.Status)
	}

	b.down.Store(true)
	if resp, err = http.Get(front.URL + "/v1/rank/" + strconv.Itoa(u1)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rank on dead shard = %s, want 503 shed", resp.Status)
	}
}
