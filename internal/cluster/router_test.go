package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
	"github.com/cold-diffusion/cold/internal/text"
)

// fakeReplica is a scriptable coldserve stand-in: it answers the /v1
// surface with the serve-shaped JSON the router consumes, and can be
// "killed" (connections reset mid-flight, like a dead process), made to
// fail with 500s, slowed down, drained, or moved to another model
// generation — all without rebinding ports.
type fakeReplica struct {
	srv   *httptest.Server
	down  atomic.Bool
	fail  atomic.Bool
	drain atomic.Bool
	delay atomic.Int64 // nanoseconds before answering
	gen   atomic.Uint64
	key   atomic.Value // string
	hits  atomic.Int64 // prediction requests that reached this replica
}

func newFakeReplica(t *testing.T, key string, gen uint64) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.key.Store(key)
	f.gen.Store(gen)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			// A dead process resets the connection; Hijack+close is the
			// closest a live test server gets.
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server must support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		switch {
		case r.URL.Path == "/v1/healthz":
			code := http.StatusOK
			status := "ok"
			if f.drain.Load() {
				code, status = http.StatusServiceUnavailable, "draining"
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]any{
				"status": status, "uptime_s": 1.0,
				"generation": f.gen.Load(), "model_key": f.key.Load().(string),
				"degraded": false, "draining": f.drain.Load(),
			})
		case strings.HasPrefix(r.URL.Path, "/v1/predict/") || r.URL.Path == "/v1/topics":
			f.hits.Add(1)
			if f.fail.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				io.WriteString(w, `{"error":{"code":"internal","message":"injected"}}`)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"score": 0.5, "generation": f.gen.Load(),
				"model_key": f.key.Load().(string), "degraded": false,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// fastConfig returns a Config with test-speed timings over the given
// fake replica topology; probes stay manual (huge interval) so tests
// drive them deterministically with ProbeAll.
func fastConfig(shards ...[]*fakeReplica) Config {
	cfg := Config{
		RequestTimeout: 2 * time.Second,
		AttemptTimeout: 500 * time.Millisecond,
		MaxAttempts:    3,
		RetryBase:      time.Millisecond,
		RetryMax:       5 * time.Millisecond,
		ProbeEvery:     time.Hour,
		ProbeTimeout:   500 * time.Millisecond,
		EjectAfter:     2,
		ReadmitAfter:   2,
		SlowStart:      time.Millisecond, // warmed nearly instantly
		BudgetBurst:    100,              // ample unless a test shrinks it
	}
	for _, pool := range shards {
		var urls []string
		for _, f := range pool {
			urls = append(urls, f.srv.URL)
		}
		cfg.Shards = append(cfg.Shards, urls)
	}
	return cfg
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front
}

// post sends one routed prediction request and returns the response
// with its decoded body.
func post(t *testing.T, url, path string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("response %s does not decode: %v\n%s", resp.Status, err, raw)
		}
	}
	return resp, decoded
}

// userForShard finds a user id that ShardOf assigns to the wanted shard.
func userForShard(want, shards int) int {
	for u := 0; ; u++ {
		if ShardOf(u, shards) == want {
			return u
		}
	}
}

func TestRouterForwardsByUserShard(t *testing.T) {
	s0 := newFakeReplica(t, "m@1", 1)
	s1 := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{s0}, []*fakeReplica{s1}))
	rt.ProbeAll(context.Background())

	for shard, rep := range []*fakeReplica{s0, s1} {
		user := userForShard(shard, 2)
		resp, body := post(t, front.URL, "/v1/predict/link",
			fmt.Sprintf(`{"from":%d,"to":1}`, user))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard %d request: %s", shard, resp.Status)
		}
		if got := resp.Header.Get("X-Cold-Shard"); got != fmt.Sprint(shard) {
			t.Fatalf("X-Cold-Shard = %q, want %d", got, shard)
		}
		if body["model_key"] != "m@1" {
			t.Fatalf("model_key = %v, want the fleet key", body["model_key"])
		}
		if rep.hits.Load() == 0 {
			t.Fatalf("shard %d's replica never saw the request", shard)
		}
	}
	// The other shard's replica must not have answered its neighbour's
	// traffic.
	if s0.hits.Load() != 1 || s1.hits.Load() != 1 {
		t.Fatalf("hits = %d/%d, want exactly one each", s0.hits.Load(), s1.hits.Load())
	}
}

func TestRouterRetriesToHealthyReplica(t *testing.T) {
	bad := newFakeReplica(t, "m@1", 1)
	good := newFakeReplica(t, "m@1", 1)
	bad.fail.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{bad, good})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	// Whichever replica round-robin tries first, every request must land
	// on a 200 — a single failing replica costs retries, not errors.
	for i := 0; i < 6; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/retweet", `{"publisher":0,"candidate":2,"words":[1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s, want 200 via retry", i, resp.Status)
		}
	}
	if got := cfg.Metrics.Retries.Value(); got == 0 {
		t.Fatal("expected at least one retry to be recorded")
	}
}

func TestRouterRetryBudgetBoundsAmplification(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	a.fail.Store(true)
	b.fail.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{a, b})
	cfg.Metrics = NewMetrics(reg)
	cfg.BudgetBurst = 1
	cfg.BudgetRatio = 0.001 // effectively no earn-back inside the test
	cfg.BreakerFailures = 1000
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	for i := 0; i < 8; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if got := cfg.Metrics.BudgetExhausted.Value(); got == 0 {
		t.Fatal("expected the retry budget to report exhaustion under sustained failure")
	}
	// 8 requests, budget 1: retries are capped near the burst, far below
	// the MaxAttempts-1 per request a budgetless router would fire.
	if retries := cfg.Metrics.Retries.Value(); retries > 3 {
		t.Fatalf("retries = %v with budget 1; the budget is not limiting amplification", retries)
	}
}

func TestRouterBreakerShedsWithRetryAfter(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{a, b})
	cfg.Metrics = NewMetrics(reg)
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = time.Minute // stays open for the whole test
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())
	a.fail.Store(true)
	b.fail.Store(true)

	// Drive the breaker open: whole-request failures, threshold 2.
	for i := 0; i < 3; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if got := cfg.Metrics.BreakerOpens.Value(); got == 0 {
		t.Fatal("breaker never opened under total shard failure")
	}

	// Open breaker: immediate shed with 503 + Retry-After, no queueing
	// against the dead shard.
	before := a.hits.Load() + b.hits.Load()
	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response lacks Retry-After")
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != "breaker_open" {
		t.Fatalf("shed code = %v, want breaker_open", errObj["code"])
	}
	if after := a.hits.Load() + b.hits.Load(); after != before {
		t.Fatalf("shed request still reached the replicas (%d → %d hits)", before, after)
	}
	if got := cfg.Metrics.BreakerShed.Value(); got == 0 {
		t.Fatal("breaker shed not recorded")
	}
}

func TestRouterHedgingWinsTail(t *testing.T) {
	slow := newFakeReplica(t, "m@1", 1)
	fast := newFakeReplica(t, "m@1", 1)
	slow.delay.Store(int64(300 * time.Millisecond))
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{slow, fast})
	cfg.Metrics = NewMetrics(reg)
	cfg.HedgeAfter = 20 * time.Millisecond
	cfg.Seed = 42
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	// Enough requests that round-robin lands the primary on the slow
	// replica at least once; those hedge to the fast one and win.
	start := time.Now()
	for i := 0; i < 4; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/time", `{"user":3,"words":[1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s", i, resp.Status)
		}
	}
	if cfg.Metrics.Hedges.Value() == 0 || cfg.Metrics.HedgeWins.Value() == 0 {
		t.Fatalf("hedges = %v wins = %v; expected the slow primary to be hedged around",
			cfg.Metrics.Hedges.Value(), cfg.Metrics.HedgeWins.Value())
	}
	// 4 requests at ≥300ms each would be ≥1.2s unhedged; winning hedges
	// must have cut well into that.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("hedged run took %v; hedges are not cutting the tail", took)
	}
}

func TestRouterGenerationSkewGuard(t *testing.T) {
	// Replica A reloaded to m@2; replica B lags on m@1. With one vote
	// each the tie breaks to the higher generation — requests pin to
	// m@2 and only A may answer them.
	ahead := newFakeReplica(t, "m@2", 2)
	behind := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{ahead, behind})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	if key, gen := rt.majority(); key != "m@2" || gen != 2 {
		t.Fatalf("majority = %q gen %d, want m@2 gen 2", key, gen)
	}
	for i := 0; i < 6; i++ {
		resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %s", i, resp.Status)
		}
		if body["model_key"] != "m@2" {
			t.Fatalf("request %d answered from %v; generations mixed", i, body["model_key"])
		}
		if resp.Header.Get("X-Cold-Model") != "m@2" {
			t.Fatalf("X-Cold-Model = %q, want the pinned key", resp.Header.Get("X-Cold-Model"))
		}
	}
	if behind.hits.Load() != 0 {
		t.Fatalf("lagging replica answered %d requests; selection must skip it", behind.hits.Load())
	}
	// The fleet gauges report the laggard.
	rt.refreshFleetGauges()
	if got := cfg.Metrics.ReplicasLagging.Value(); got != 1 {
		t.Fatalf("replicas_lagging = %v, want 1", got)
	}

	// A replica that flips generations AFTER the probe (reload raced the
	// request) has its response discarded, not returned: skew guard at
	// the response side.
	ahead.key.Store("m@3")
	ahead.gen.Store(3)
	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode == http.StatusOK && body["model_key"] != nil {
		// Whatever the router did — retried into a 503 or answered after
		// re-pinning — it must never hand back a key that mismatches the
		// X-Cold-Model pin.
		if hdr := resp.Header.Get("X-Cold-Model"); hdr != "" && body["model_key"] != hdr {
			t.Fatalf("body key %v mismatches pinned header %q", body["model_key"], hdr)
		}
	}
	if got := cfg.Metrics.SkewDiscards.Value(); got == 0 {
		t.Fatal("generation-skew discard not recorded")
	}
}

// fakeEngine is a minimal serve.Engine for fallback tests.
type fakeEngine struct{ users int }

func (f fakeEngine) Info() serve.ModelInfo { return serve.ModelInfo{Users: f.users, Degraded: true} }
func (f fakeEngine) RetweetScore(int, int, text.BagOfWords) float64 { return 0.25 }
func (f fakeEngine) LinkScore(int, int) float64                     { return 0.125 }
func (f fakeEngine) PredictTime(int, text.BagOfWords) int           { return 2 }
func (f fakeEngine) TopicPosterior(int, text.BagOfWords) ([]float64, error) {
	return nil, serve.ErrDegraded
}

func TestRouterFallsBackDegraded(t *testing.T) {
	dead := newFakeReplica(t, "m@1", 1)
	dead.down.Store(true)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{dead})
	cfg.Metrics = NewMetrics(reg)
	cfg.Fallback = fakeEngine{users: 100}
	rt, front := newTestRouter(t, cfg)
	rt.ProbeAll(context.Background())

	resp, body := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback answer: %s, want degraded 200", resp.Status)
	}
	if body["degraded"] != true {
		t.Fatalf("fallback response not marked degraded: %v", body)
	}
	if body["model_key"] != "fallback" || resp.Header.Get("X-Cold-Model") != "fallback" {
		t.Fatalf("fallback identity missing: key=%v header=%q", body["model_key"], resp.Header.Get("X-Cold-Model"))
	}
	if body["score"] != 0.125 {
		t.Fatalf("score = %v, want the fallback engine's answer", body["score"])
	}
	if cfg.Metrics.DegradedAnswers.Value() == 0 {
		t.Fatal("degraded answer not recorded")
	}

	// Topics cannot be served by the popularity prior: honest 503, not a
	// made-up answer.
	resp, _ = post(t, front.URL, "/v1/topics", `{"user":0,"words":[1]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("topics under fallback: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("topics shed lacks Retry-After")
	}
}

func TestRouterPassesClientErrorsThrough(t *testing.T) {
	rep := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{rep}))
	rt.ProbeAll(context.Background())

	// Missing routing field: rejected at the router, no forward.
	resp, body := post(t, front.URL, "/v1/predict/link", `{"to":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing field: %s, want 400", resp.Status)
	}
	errObj, _ := body["error"].(map[string]any)
	if errObj["code"] != "bad_request" {
		t.Fatalf("error code = %v", errObj["code"])
	}
	if rep.hits.Load() != 0 {
		t.Fatal("unroutable request was forwarded anyway")
	}

	// Unknown endpoints answer the envelope.
	r2, err := http.Get(front.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %s", r2.Status)
	}
	var envl map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&envl); err != nil {
		t.Fatalf("404 body is not the JSON envelope: %v", err)
	}
}

func TestRouterEjectionAndReadmission(t *testing.T) {
	flaky := newFakeReplica(t, "m@1", 1)
	steady := newFakeReplica(t, "m@1", 1)
	reg := obs.NewRegistry()
	cfg := fastConfig([]*fakeReplica{flaky, steady})
	cfg.Metrics = NewMetrics(reg)
	rt, front := newTestRouter(t, cfg)
	ctx := context.Background()
	rt.ProbeAll(ctx)

	// Kill the flaky replica; EjectAfter=2 consecutive probe failures
	// eject it.
	flaky.down.Store(true)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx)
	if cfg.Metrics.Ejections.Value() == 0 {
		t.Fatal("dead replica was not ejected by probing")
	}
	if got := cfg.Metrics.ReplicasUp.Value(); got != 1 {
		t.Fatalf("replicas_up = %v after ejection, want 1", got)
	}
	// Traffic keeps flowing through the survivor without retries against
	// the ejected corpse.
	steadyBefore := steady.hits.Load()
	for i := 0; i < 4; i++ {
		resp, _ := post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d with one replica down: %s", i, resp.Status)
		}
	}
	if steady.hits.Load()-steadyBefore != 4 {
		t.Fatalf("survivor served %d of 4", steady.hits.Load()-steadyBefore)
	}

	// Recovery: ReadmitAfter=2 consecutive probe successes readmit it
	// (slow-start, but the test window is 1ms so it warms immediately).
	flaky.down.Store(false)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx)
	if cfg.Metrics.Readmissions.Value() == 0 {
		t.Fatal("recovered replica was not readmitted")
	}
	if got := cfg.Metrics.ReplicasUp.Value(); got != 2 {
		t.Fatalf("replicas_up = %v after readmission, want 2", got)
	}
	time.Sleep(2 * time.Millisecond) // past the slow-start window
	flakyBefore := flaky.hits.Load()
	for i := 0; i < 8; i++ {
		post(t, front.URL, "/v1/predict/link", `{"from":0,"to":1}`)
	}
	if flaky.hits.Load() == flakyBefore {
		t.Fatal("readmitted replica never received traffic again")
	}
}

func TestRouterStatusEndpoint(t *testing.T) {
	a := newFakeReplica(t, "m@1", 1)
	b := newFakeReplica(t, "m@1", 1)
	rt, front := newTestRouter(t, fastConfig([]*fakeReplica{a}, []*fakeReplica{b}))
	rt.ProbeAll(context.Background())

	resp, err := http.Get(front.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("status shards = %d, want 2", len(st.Shards))
	}
	for _, shard := range st.Shards {
		if shard.Breaker != "closed" {
			t.Fatalf("shard %d breaker = %q, want closed", shard.Index, shard.Breaker)
		}
		for _, rep := range shard.Replicas {
			if !rep.Up || rep.ModelKey != "m@1" {
				t.Fatalf("replica state %+v, want up on m@1", rep)
			}
		}
	}
	if st.MajorityModelKey != "m@1" || st.RetryBudgetTokens <= 0 {
		t.Fatalf("status = %+v, want majority m@1 and a positive budget", st)
	}
}
