package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cold-diffusion/cold/internal/faultinject"
	"github.com/cold-diffusion/cold/internal/overload"
	"github.com/cold-diffusion/cold/internal/serve"
	"github.com/cold-diffusion/cold/internal/text"
)

// Config holds the router's topology and resilience knobs. Zero values
// get sensible defaults from New; only Shards is required.
type Config struct {
	// Shards is the backend topology: Shards[i] is the replica pool
	// (base URLs, e.g. "http://127.0.0.1:8081") serving shard i. Users
	// are assigned to shards with ShardOf(user, len(Shards)).
	Shards [][]string

	// RequestTimeout bounds one routed request end to end, including
	// every retry and hedge; 0 → 2s. The deadline propagates to the
	// replicas through the outgoing request contexts, so an abandoned
	// attempt is cancelled downstream, not just ignored.
	RequestTimeout time.Duration
	// AttemptTimeout bounds a single forwarded attempt; 0 →
	// RequestTimeout/2.
	AttemptTimeout time.Duration
	// MaxAttempts caps forward attempts per request (first try
	// included); 0 → 3.
	MaxAttempts int
	// RetryBase/RetryMax shape the exponential backoff between retries;
	// the actual sleep is uniformly jittered in (0, d] ("full jitter").
	// 0 → 10ms / 250ms.
	RetryBase, RetryMax time.Duration
	// BudgetBurst and BudgetRatio configure the retry budget: at most
	// BudgetBurst banked tokens, earning BudgetRatio tokens per routed
	// request; every retry or hedge spends one. 0 → 10 / 0.1.
	BudgetBurst int
	BudgetRatio float64
	// HedgeAfter, when positive, fires a tail-latency hedge to a second
	// replica of the shard if the first attempt has not answered within
	// this delay. First usable response wins; the loser is cancelled.
	HedgeAfter time.Duration

	// ProbeEvery is the active health-probe interval (jittered ±20%);
	// 0 → 1s. ProbeTimeout bounds one probe; 0 → ProbeEvery/2.
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	// EjectAfter ejects a replica after this many consecutive probe or
	// traffic failures; 0 → 3. ReadmitAfter readmits it after this many
	// consecutive probe successes; 0 → 2.
	EjectAfter   int
	ReadmitAfter int
	// SlowStart ramps a readmitted replica's selection probability
	// linearly from 0 to full over this window; 0 → 3s.
	SlowStart time.Duration

	// BreakerFailures consecutive whole-request failures open a shard's
	// breaker; 0 → 5. BreakerCooldown is the open window (jittered
	// ±25%); 0 → 2s. BreakerProbes bounds half-open trial requests;
	// 0 → 1.
	BreakerFailures int
	BreakerCooldown time.Duration
	BreakerProbes   int

	// RetryAfterHint is the base Retry-After when shedding with no
	// better estimate; 0 → 1s. The emitted value is jittered so shed
	// clients do not stampede back on the same tick.
	RetryAfterHint time.Duration

	// Fallback, when set, answers a shard's traffic (honestly marked
	// degraded) when every replica is unusable — the same
	// popularity-prior engine coldserve degrades to.
	Fallback serve.Engine
	// Posts resolves a post index to its bag of words for the fallback
	// path; nil means fallback requests must carry explicit words.
	Posts func(post int) (text.BagOfWords, bool)

	// Seed makes the router's jitter and slow-start draws reproducible;
	// 0 → 1.
	Seed int64
	// Logf, when set, receives lifecycle events.
	Logf func(format string, args ...any)
	// Metrics, when set, instruments the routing tier.
	Metrics *Metrics
	// Client overrides the forwarding HTTP client (tests); nil builds
	// one with a widened idle pool.
	Client *http.Client
}

// Router is the shard-by-user routing tier. Build with New, run the
// HTTP surface with Serve (or embed Handler), and start active health
// probing with StartProbes.
type Router struct {
	cfg      Config
	shards   [][]*replica
	all      []*replica
	rr       []atomic.Uint64 // per-shard round-robin cursor
	breakers []*breaker
	budget   *budget
	rng      *lockedRand
	client   *http.Client
	start    time.Time
	draining atomic.Bool
}

// New validates the topology and builds a router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: Config.Shards is required")
	}
	for i, pool := range cfg.Shards {
		if len(pool) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		for _, u := range pool {
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				return nil, fmt.Errorf("cluster: replica %q of shard %d is not an http(s) URL", u, i)
			}
		}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = cfg.RequestTimeout / 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 10 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 250 * time.Millisecond
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeEvery / 2
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	if cfg.ReadmitAfter <= 0 {
		cfg.ReadmitAfter = 2
	}
	if cfg.SlowStart <= 0 {
		cfg.SlowStart = 3 * time.Second
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rt := &Router{
		cfg:    cfg,
		rng:    newLockedRand(cfg.Seed),
		client: cfg.Client,
		start:  time.Now(),
	}
	if rt.client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		rt.client = &http.Client{Transport: tr}
	}
	rt.shards = make([][]*replica, len(cfg.Shards))
	rt.rr = make([]atomic.Uint64, len(cfg.Shards))
	rt.breakers = make([]*breaker, len(cfg.Shards))
	for i, pool := range cfg.Shards {
		for _, u := range pool {
			rep := &replica{url: strings.TrimRight(u, "/"), shard: i, up: true}
			rt.shards[i] = append(rt.shards[i], rep)
			rt.all = append(rt.all, rep)
		}
		rt.breakers[i] = newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown,
			cfg.BreakerProbes, rt.rng.Float64, cfg.Metrics.breakerOpened)
	}
	rt.budget = newBudget(cfg.BudgetBurst, cfg.BudgetRatio)
	return rt, nil
}

// route describes one forwarded endpoint: its metric label, HTTP
// method (empty → POST), path, which request field is the routing
// (shard-owning) user, and the request's priority tier (the client's
// X-Cold-Priority when valid, the route default otherwise) with the raw
// header value kept for relay to the replica.
type route struct {
	name      string
	method    string
	path      string
	userField string
	tier      overload.Tier
	priority  string
}

// hotBrownoutLevel is the replica brownout level at or above which the
// router stops pushing extra work: retries and hedges never select an
// L3+ replica, and a brownout shed answered by one is relayed to the
// client instead of retried into the heat.
const hotBrownoutLevel = 3

// routeTier is the tier a route serves when the client sends no
// priority header, mirroring coldserve's own route defaults.
func routeTier(name string) overload.Tier {
	switch name {
	case "batch":
		return overload.TierBatch
	case "rank":
		return overload.TierRank
	default:
		return overload.TierInteractive
	}
}

// stampPriority resolves the request's effective tier (a valid client
// X-Cold-Priority wins over the route default) and records the raw
// header value so attemptOne can relay it verbatim. An unknown name
// still relays — the replica applies the same fallback-to-default rule.
func stampPriority(req *http.Request, r *route) {
	r.tier = routeTier(r.name)
	if v := req.Header.Get(overload.PriorityHeader); v != "" {
		r.priority = v
		if t, ok := overload.ParseTier(v); ok {
			r.tier = t
		}
	}
}

// forwardCtx bounds one routed request by RequestTimeout and, when the
// client itself propagated X-Cold-Deadline-Ms, by that remaining budget
// too — a deadline set upstream of the router survives the hop instead
// of being stretched back out to the router's own timeout.
func (rt *Router) forwardCtx(req *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(req.Context(), rt.cfg.RequestTimeout)
	if ms, err := strconv.ParseInt(req.Header.Get(overload.DeadlineHeader), 10, 64); err == nil {
		if dl := time.Now().Add(time.Duration(ms) * time.Millisecond); dl.Before(mustDeadline(ctx)) {
			dctx, dcancel := context.WithDeadline(ctx, dl)
			outer := cancel
			ctx, cancel = dctx, func() { dcancel(); outer() }
		}
	}
	return ctx, cancel
}

// mustDeadline reads a deadline known to exist (forwardCtx always sets
// one via RequestTimeout).
func mustDeadline(ctx context.Context) time.Time {
	dl, _ := ctx.Deadline()
	return dl
}

// Routes is the forwarded single-score prediction surface. The routing
// user is the user whose behavioural state answers the query — the
// candidate for retweet, the link source for link, the posting user
// otherwise — and must match what serve-side shard ownership validates.
// The batch route (/v1/score/batch, split per shard and re-merged) and
// the rank route (/v1/rank/{user}, routed on the path segment) have
// their own handlers.
var Routes = []struct{ Name, Path, UserField string }{
	{"retweet", "/v1/predict/retweet", "candidate"},
	{"link", "/v1/predict/link", "from"},
	{"time", "/v1/predict/time", "user"},
	{"topics", "/v1/topics", "user"},
}

// Handler returns the router's route table: the forwarded /v1
// prediction surface (single-score routes, the scatter/gather batch
// route, and the rank route), the shard map at /v1/cluster/status,
// liveness, and (with Metrics set) the Prometheus exposition. Non-2xx
// bodies carry the shared JSON error envelope.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range Routes {
		mux.Handle("POST "+r.Path, rt.predict(route{name: r.Name, path: r.Path, userField: r.UserField}))
	}
	mux.Handle("POST /v1/score/batch", rt.scoreBatch())
	mux.Handle("GET /v1/rank/{user}", rt.rank())
	mux.HandleFunc("GET /v1/cluster/status", rt.handleStatus)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	if mh := rt.cfg.Metrics.Handler(); mh != nil {
		mux.Handle("GET /metrics", mh)
		mux.Handle("GET /v1/metrics", mh)
	}
	return envelope(mux)
}

// Serve runs the router on ln until ctx is cancelled, then drains like
// the replicas do: new work refused, in-flight forwards finished.
func (rt *Router) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:     rt.Handler(),
		BaseContext: func(net.Listener) context.Context { return context.Background() },
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	rt.draining.Store(true)
	rt.cfg.Logf("cluster: drain started")
	drainCtx, cancel := context.WithTimeout(context.Background(), rt.cfg.RequestTimeout+time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("cluster: drain deadline exceeded: %w", err)
	}
	rt.cfg.Logf("cluster: drained cleanly")
	return nil
}

// ---- request admission and routing ----

// routingFields is the loose decode of a prediction body: just enough
// to find the routing user. Full validation stays on the replicas.
type routingFields struct {
	Publisher *int `json:"publisher"`
	Candidate *int `json:"candidate"`
	From      *int `json:"from"`
	To        *int `json:"to"`
	User      *int `json:"user"`
}

func (f *routingFields) field(name string) *int {
	switch name {
	case "publisher":
		return f.Publisher
	case "candidate":
		return f.Candidate
	case "from":
		return f.From
	case "to":
		return f.To
	default:
		return f.User
	}
}

func (rt *Router) predict(r route) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if rt.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining", "router is draining")
			return
		}
		rt.cfg.Metrics.request(r.name)
		rt.budget.earn()
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
			return
		}
		var rf routingFields
		if err := json.Unmarshal(body, &rf); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
			return
		}
		user := rf.field(r.userField)
		if user == nil {
			writeError(w, http.StatusBadRequest, "bad_request", "missing field "+r.userField)
			return
		}
		if *user < 0 {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("%s %d out of range", r.userField, *user))
			return
		}
		shard := ShardOf(*user, len(rt.shards))
		// Stamp a per-request copy: r is shared by every request of this
		// route, and priority is per-request state.
		pr := r
		stampPriority(req, &pr)
		start := time.Now()
		rt.forward(w, req, pr, shard, body)
		rt.cfg.Metrics.forwarded(time.Since(start).Seconds())
	}
}

// ---- batch scatter/gather ----

// batchRoutingItem is the loose per-item decode of a /v1/score/batch
// entry: the kind plus just enough to find the routing user. Full
// validation stays on the replicas.
type batchRoutingItem struct {
	Kind      string `json:"kind"`
	Candidate *int   `json:"candidate"`
	From      *int   `json:"from"`
	User      *int   `json:"user"`
}

// routingUser is the shard-owning user for one batch item, mirroring
// the per-route userField of the single-score surface.
func (it *batchRoutingItem) routingUser() *int {
	switch it.Kind {
	case "retweet":
		return it.Candidate
	case "link":
		return it.From
	default:
		return it.User
	}
}

// errorItem renders one failed batch slot in the replica's per-item
// shape, so merged responses stay uniform regardless of which side
// produced the slot.
func errorItem(code, msg string) json.RawMessage {
	b, _ := json.Marshal(struct {
		Status string    `json:"status"`
		Error  errorInfo `json:"error"`
	}{"error", errorInfo{Code: code, Message: msg}})
	return b
}

// scoreBatch is the batched forwarding path: items are split by owning
// shard, each sub-batch rides the same hardened per-shard pipeline as a
// single score (pinning, retries, hedging, breakers), and the per-item
// results are merged back in input order. A failed shard fails only its
// own items — to per-item degraded answers when the fallback engine
// can produce them, per-item error slots otherwise.
func (rt *Router) scoreBatch() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if rt.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining", "router is draining")
			return
		}
		rt.cfg.Metrics.request("batch")
		rt.budget.earn()
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 4<<20))
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
			return
		}
		var in struct {
			Items []json.RawMessage `json:"items"`
		}
		if err := json.Unmarshal(body, &in); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad request body: "+err.Error())
			return
		}
		if len(in.Items) == 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "empty items")
			return
		}

		start := time.Now()
		results := make([]json.RawMessage, len(in.Items))
		shardItems := make(map[int][]json.RawMessage)
		shardIdx := make(map[int][]int) // input slot of each sub-batch item
		for i, raw := range in.Items {
			var it batchRoutingItem
			if err := json.Unmarshal(raw, &it); err != nil {
				results[i] = errorItem("bad_request", "bad batch item: "+err.Error())
				continue
			}
			user := it.routingUser()
			if user == nil {
				results[i] = errorItem("bad_request", "missing routing user field")
				continue
			}
			if *user < 0 {
				results[i] = errorItem("bad_request",
					fmt.Sprintf("routing user %d out of range", *user))
				continue
			}
			shard := ShardOf(*user, len(rt.shards))
			shardItems[shard] = append(shardItems[shard], raw)
			shardIdx[shard] = append(shardIdx[shard], i)
		}

		ctx, cancel := rt.forwardCtx(req)
		defer cancel()
		br := route{name: "batch", path: "/v1/score/batch"}
		stampPriority(req, &br)
		type shardReply struct {
			shard int
			out   forwardOutcome
		}
		replies := make(chan shardReply, len(shardItems))
		var wg sync.WaitGroup
		for shard, items := range shardItems {
			sub, _ := json.Marshal(struct {
				Items []json.RawMessage `json:"items"`
			}{items})
			wg.Add(1)
			go func(shard int, sub []byte) {
				defer wg.Done()
				replies <- shardReply{shard, rt.collect(ctx, br, shard, sub)}
			}(shard, sub)
		}
		wg.Wait()
		close(replies)

		degraded := false
		for rp := range replies {
			rt.mergeShardReply(results, shardIdx[rp.shard], shardItems[rp.shard], rp.out, &degraded)
		}

		key, gen := rt.majority()
		if key != "" {
			w.Header().Set("X-Cold-Model", key)
		}
		writeJSON(w, http.StatusOK, struct {
			Results    []json.RawMessage `json:"results"`
			Generation uint64            `json:"generation"`
			ModelKey   string            `json:"model_key,omitempty"`
			Degraded   bool              `json:"degraded"`
		}{results, gen, key, degraded})
		rt.cfg.Metrics.forwarded(time.Since(start).Seconds())
	}
}

// mergeShardReply scatters one shard's outcome back into the merged
// result slots: relayed per-item payloads on success, the replica's
// error on every item for a terminal failure, and degraded or shed
// per-item answers when the shard produced nothing.
func (rt *Router) mergeShardReply(results []json.RawMessage, idx []int, items []json.RawMessage, out forwardOutcome, degraded *bool) {
	if out.res != nil && out.res.status == http.StatusOK {
		var rep struct {
			Results  []json.RawMessage `json:"results"`
			Degraded bool              `json:"degraded"`
		}
		if err := json.Unmarshal(out.res.body, &rep); err == nil && len(rep.Results) == len(idx) {
			for j, i := range idx {
				results[i] = rep.Results[j]
			}
			if rep.Degraded {
				*degraded = true
			}
			return
		}
		for _, i := range idx {
			results[i] = errorItem("internal", "malformed replica batch reply")
		}
		return
	}
	if out.res != nil {
		// Terminal non-200 (replica-side reject): surface the replica's
		// envelope error on every item of the sub-batch.
		var eb errorBody
		code, msg := "internal", fmt.Sprintf("replica answered %d", out.res.status)
		if err := json.Unmarshal(out.res.body, &eb); err == nil && eb.Error.Code != "" {
			code, msg = eb.Error.Code, eb.Error.Message
		}
		for _, i := range idx {
			results[i] = errorItem(code, msg)
		}
		return
	}
	// No replica answered: per-item degraded fallback where possible,
	// the shed verdict otherwise.
	for j, i := range idx {
		if it, ok := rt.degradedItem(items[j]); ok {
			results[i] = it
			*degraded = true
			continue
		}
		results[i] = errorItem(out.code, out.msg)
	}
}

// rank forwards GET /v1/rank/{user} to the shard owning the user. The
// popularity-prior fallback has no community rankings, so an unusable
// shard sheds rather than degrades.
func (rt *Router) rank() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if rt.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining", "router is draining")
			return
		}
		rt.cfg.Metrics.request("rank")
		rt.budget.earn()
		user, err := strconv.Atoi(req.PathValue("user"))
		if err != nil || user < 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "bad user path segment")
			return
		}
		path := "/v1/rank/" + strconv.Itoa(user)
		if k := req.URL.Query().Get("k"); k != "" {
			path += "?k=" + url.QueryEscape(k)
		}
		shard := ShardOf(user, len(rt.shards))
		rr := route{name: "rank", method: http.MethodGet, path: path}
		stampPriority(req, &rr)
		start := time.Now()
		rt.forward(w, req, rr, shard, nil)
		rt.cfg.Metrics.forwarded(time.Since(start).Seconds())
	}
}

// attemptResult is the outcome of one forwarded attempt.
type attemptResult struct {
	rep      *replica
	terminal bool // a response to hand to the client (2xx valid, or any 4xx)
	skew     bool // 2xx discarded for model-key mismatch; not a shard fault
	pressure bool // deliberate overload shed (brownout 503); not a shard fault
	status   int
	header   http.Header
	body     []byte
	err      error
}

// forwardOutcome is what the hardened forward path produced for one
// shard: a terminal replica response to relay, or (res == nil) the shed
// verdict — how long the client should wait, and why.
type forwardOutcome struct {
	res  *attemptResult
	key  string // pinned majority model key
	wait time.Duration
	code string
	msg  string
}

// forward drives the hardened forwarding path and writes the result:
// terminal responses are relayed, everything else degrades or sheds.
func (rt *Router) forward(w http.ResponseWriter, req *http.Request, r route, shard int, body []byte) {
	ctx, cancel := rt.forwardCtx(req)
	defer cancel()
	out := rt.collect(ctx, r, shard, body)
	if out.res != nil {
		rt.writeForwarded(w, out.res, out.key)
		return
	}
	rt.degradeOrShed(w, r, shard, body, out.wait, out.code, out.msg)
}

// collect is the write-free core of forward: breaker check, replica
// selection pinned to the fleet-majority model generation, budgeted
// retries with full-jitter backoff, and optional hedging. The batch
// fan-out calls it once per shard and merges outcomes itself.
func (rt *Router) collect(ctx context.Context, r route, shard int, body []byte) forwardOutcome {
	br := rt.breakers[shard]
	if ok, wait := br.allow(); !ok {
		rt.cfg.Metrics.breakerShedOne()
		return forwardOutcome{wait: wait, code: "breaker_open",
			msg: fmt.Sprintf("shard %d circuit breaker is open", shard)}
	}

	key, _ := rt.majority()
	tried := make(map[*replica]bool, rt.cfg.MaxAttempts)
	succeeded := false
	defer func() {
		if succeeded {
			br.onSuccess()
		} else {
			br.onFailure()
		}
	}()

	for attempt := 0; attempt < rt.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		// First attempts of interactive traffic prefer L0 replicas; a
		// retry must respect receiver pressure and never lands on a
		// replica reporting L3+ (it would only deepen the brownout).
		rep := rt.pick(shard, key, tried, pickOpts{
			preferCalm: r.tier == overload.TierInteractive,
			skipHot:    attempt > 0,
		})
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempt > 0 {
			if !rt.budget.take() {
				rt.cfg.Metrics.budgetExhausted()
				break
			}
			rt.cfg.Metrics.retried()
			if !sleepCtx(ctx, rt.backoff(attempt)) {
				break
			}
		}
		res := rt.attemptMaybeHedged(ctx, rep, r, shard, key, body, tried)
		if res.terminal {
			// A pressure shed (brownout 503) is a deliberate verdict from
			// a live replica, not a shard fault: relay it breaker-neutral.
			succeeded = res.status < 500 || res.pressure
			return forwardOutcome{res: res, key: key}
		}
		if res.skew {
			// The replica is healthy, just on another generation; don't
			// let skew open the shard breaker.
			succeeded = true
		}
	}

	return forwardOutcome{wait: rt.cfg.RetryAfterHint, code: "no_replicas",
		msg: fmt.Sprintf("no usable replica for shard %d", shard)}
}

// pickOpts shapes replica selection around receiver pressure.
type pickOpts struct {
	// preferCalm makes a first pass over brownout-L0 replicas before
	// accepting a browned-out one; interactive traffic sets it so the
	// least-degraded replica answers when the pool is split.
	preferCalm bool
	// skipHot refuses replicas reporting hotBrownoutLevel or deeper
	// outright. Retries and hedges set it: extra attempts must not be
	// pushed into a replica that is already shedding load.
	skipHot bool
}

// pick selects the next eligible replica of shard via round robin:
// in rotation, not draining, on the pinned model key (when one is
// known), past or inside its slow-start ramp, not already tried, and
// within opts' brownout bounds.
func (rt *Router) pick(shard int, key string, tried map[*replica]bool, opts pickOpts) *replica {
	if opts.preferCalm {
		if rep := rt.pickPass(shard, key, tried, 0); rep != nil {
			return rep
		}
	}
	maxBrownout := overload.MaxLevel
	if opts.skipHot {
		maxBrownout = hotBrownoutLevel - 1
	}
	return rt.pickPass(shard, key, tried, maxBrownout)
}

// pickPass is one round-robin sweep accepting replicas whose reported
// brownout level is at most maxBrownout.
func (rt *Router) pickPass(shard int, key string, tried map[*replica]bool, maxBrownout int) *replica {
	pool := rt.shards[shard]
	n := len(pool)
	off := int(rt.rr[shard].Add(1))
	for i := 0; i < n; i++ {
		rep := pool[(off+i)%n]
		if tried[rep] {
			continue
		}
		st := rep.snapshot()
		if !st.up || st.draining {
			continue
		}
		if st.brownout > maxBrownout {
			continue // browned out beyond what this pass accepts
		}
		if key != "" && st.key != "" && st.key != key {
			continue // lagging generation; skew guard keeps it out
		}
		if !st.readmitted.IsZero() {
			frac := float64(time.Since(st.readmitted)) / float64(rt.cfg.SlowStart)
			if frac < 1 && rt.rng.Float64() > frac {
				continue // slow-start: admit proportionally to warm-up
			}
		}
		return rep
	}
	return nil
}

// attemptMaybeHedged runs one attempt, racing a hedge against it when
// configured: if the primary has not answered within HedgeAfter and the
// budget allows, a second replica gets the same request, the first
// usable response wins, and the loser's context is cancelled.
func (rt *Router) attemptMaybeHedged(ctx context.Context, rep *replica, r route, shard int, key string, body []byte, tried map[*replica]bool) *attemptResult {
	if rt.cfg.HedgeAfter <= 0 {
		return rt.attemptOne(ctx, rep, r, key, body)
	}
	pctx, cancelP := context.WithCancel(ctx)
	defer cancelP()
	results := make(chan *attemptResult, 2)
	go func() { results <- rt.attemptOne(pctx, rep, r, key, body) }()

	timer := time.NewTimer(rt.cfg.HedgeAfter)
	select {
	case res := <-results:
		timer.Stop()
		return res
	case <-timer.C:
	}

	// A hedge is speculative extra load; like a retry it never lands on
	// a replica that reports L3+ pressure.
	hedge := rt.pick(shard, key, tried, pickOpts{
		preferCalm: r.tier == overload.TierInteractive,
		skipHot:    true,
	})
	if hedge == nil || !rt.budget.take() {
		if hedge == nil {
			// No second replica to hedge onto; wait out the primary.
			return <-results
		}
		rt.cfg.Metrics.budgetExhausted()
		return <-results
	}
	tried[hedge] = true
	rt.cfg.Metrics.hedged()
	faultinject.Fire(faultinject.ClusterHedge, r.name, hedge.url)
	hctx, cancelH := context.WithCancel(ctx)
	defer cancelH()
	go func() { results <- rt.attemptOne(hctx, hedge, r, key, body) }()

	first := <-results
	if first.terminal {
		if first.rep == hedge {
			rt.cfg.Metrics.hedgeWon()
		}
		cancelP()
		cancelH()
		return first
	}
	second := <-results
	if second.terminal && second.rep == hedge {
		rt.cfg.Metrics.hedgeWon()
	}
	if second.terminal || first.skew {
		return second
	}
	return first
}

// attemptOne forwards the request body to one replica and classifies
// the outcome. 2xx responses are checked against the pinned model key;
// a mismatch (the replica reloaded between our probe and this request)
// is discarded as generation skew rather than handed to the client.
func (rt *Router) attemptOne(ctx context.Context, rep *replica, r route, key string, body []byte) *attemptResult {
	res := &attemptResult{rep: rep}
	var injected error
	faultinject.Fire(faultinject.ClusterForward, r.name, rep.url, &injected)
	if injected != nil {
		res.err = injected
		rt.noteAttemptFailure(rep, injected.Error())
		return res
	}
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	method := r.method
	if method == "" {
		method = http.MethodPost
	}
	req, err := http.NewRequestWithContext(actx, method, rep.url+r.path, bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(overload.DeadlineHeader, strconv.FormatInt(time.Until(dl).Milliseconds(), 10))
	}
	if r.priority != "" {
		req.Header.Set(overload.PriorityHeader, r.priority)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		res.err = err
		// A cancelled attempt carries no verdict on the replica: the
		// hedge won, or the client went away. Only real failures feed
		// the passive ejection counter.
		if !errors.Is(err, context.Canceled) {
			rt.noteAttemptFailure(rep, err.Error())
		}
		return res
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		res.err = err
		rt.noteAttemptFailure(rep, err.Error())
		return res
	}
	res.status, res.header, res.body = resp.StatusCode, resp.Header, raw

	switch {
	case resp.StatusCode >= 500:
		if code := envelopeCode(raw); code == "brownout" || code == "deadline_unmeetable" {
			// A deliberate pressure shed: the replica answered fast, from
			// under load, with a verdict — it is not failing, and retrying
			// into the heat would only deepen it. Relay the shed to the
			// client, breaker- and ejection-neutral.
			if code == "brownout" {
				rep.notePressure(hotBrownoutLevel)
			} else {
				rep.notePressure(0)
			}
			rt.cfg.Metrics.pressureRelayed()
			res.terminal, res.pressure = true, true
			return res
		}
		res.err = fmt.Errorf("replica %s answered %d", rep.url, resp.StatusCode)
		rt.noteAttemptFailure(rep, res.err.Error())
		return res
	case resp.StatusCode >= 400:
		// The request itself is bad (or misrouted, or shed): the replica
		// is healthy and the client must see the answer unchanged.
		rep.noteTrafficOK(0, "")
		res.terminal = true
		return res
	}

	var envl struct {
		Generation uint64 `json:"generation"`
		ModelKey   string `json:"model_key"`
	}
	_ = json.Unmarshal(raw, &envl)
	rep.noteTrafficOK(envl.Generation, envl.ModelKey)
	if key != "" && envl.ModelKey != "" && envl.ModelKey != key {
		rt.cfg.Metrics.skewDiscarded()
		res.skew = true
		res.err = fmt.Errorf("replica %s answered from generation %q, request pinned to %q",
			rep.url, envl.ModelKey, key)
		return res
	}
	res.terminal = true
	return res
}

// noteAttemptFailure feeds passive failure accounting from live traffic.
func (rt *Router) noteAttemptFailure(rep *replica, msg string) {
	if rep.noteFailure(rt.cfg.EjectAfter, msg) {
		rt.cfg.Metrics.ejected()
		rt.cfg.Logf("cluster: ejected replica %s (shard %d) on traffic failures: %s", rep.url, rep.shard, msg)
	}
}

// writeForwarded copies a terminal replica response to the client,
// stamping the shard, replica and pinned model key for debuggability.
func (rt *Router) writeForwarded(w http.ResponseWriter, res *attemptResult, key string) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Cold-Shard", strconv.Itoa(res.rep.shard))
	w.Header().Set("X-Cold-Replica", res.rep.url)
	if key != "" {
		w.Header().Set("X-Cold-Model", key)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// backoff returns the full-jitter delay before retry number attempt
// (1-based): uniform in (0, min(RetryMax, RetryBase·2^(attempt-1))].
func (rt *Router) backoff(attempt int) time.Duration {
	d := float64(rt.cfg.RetryBase)
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= float64(rt.cfg.RetryMax) {
			d = float64(rt.cfg.RetryMax)
			break
		}
	}
	return time.Duration(d * rt.rng.Float64())
}

// sleepCtx sleeps d unless ctx finishes first; false means it did.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ---- degraded fallback ----

// fallbackRequest mirrors the replica-side prediction body for the
// degraded local answer path.
type fallbackRequest struct {
	Publisher *int  `json:"publisher"`
	Candidate *int  `json:"candidate"`
	From      *int  `json:"from"`
	To        *int  `json:"to"`
	User      *int  `json:"user"`
	Post      *int  `json:"post"`
	Words     []int `json:"words"`
	TopN      int   `json:"topn"`
}

// degradeOrShed is the end of the line: answer from the fallback engine
// (marked degraded) when one is configured and the route permits, else
// shed with a jittered Retry-After.
func (rt *Router) degradeOrShed(w http.ResponseWriter, r route, shard int, body []byte, wait time.Duration, code, msg string) {
	if rt.cfg.Fallback != nil && rt.answerDegraded(w, r, body) {
		return
	}
	if rt.cfg.Fallback == nil {
		rt.cfg.Metrics.proxyError()
	}
	if wait <= 0 {
		wait = rt.cfg.RetryAfterHint
	}
	// Jitter the hint ±50% so shed clients spread their comebacks.
	wait = time.Duration(float64(wait) * (0.5 + rt.rng.Float64()))
	w.Header().Set("Retry-After", strconv.Itoa(int((wait+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: errorInfo{
		Code: code, Message: msg, RetryAfterMS: wait.Milliseconds(),
	}})
}

// answerDegraded computes the response locally from the fallback
// engine. It reports false when the request cannot be answered at all
// (bad body, unresolvable post, topics route), in which case the caller
// sheds instead.
func (rt *Router) answerDegraded(w http.ResponseWriter, r route, body []byte) bool {
	var req fallbackRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return false
	}
	eng := rt.cfg.Fallback
	users := eng.Info().Users
	valid := func(v *int) bool { return v != nil && *v >= 0 && *v < users }
	bag := func() (text.BagOfWords, bool) {
		switch {
		case req.Words != nil:
			return text.NewBagOfWords(req.Words), true
		case req.Post != nil && rt.cfg.Posts != nil:
			return rt.cfg.Posts(*req.Post)
		default:
			return text.BagOfWords{}, false
		}
	}

	var sr serve.ScoreRequest
	switch r.name {
	case "retweet":
		words, ok := bag()
		if !ok || !valid(req.Publisher) || !valid(req.Candidate) {
			return false
		}
		sr = serve.ScoreRequest{Kind: serve.KindRetweet,
			Publisher: *req.Publisher, Candidate: *req.Candidate, Words: words}
	case "link":
		if !valid(req.From) || !valid(req.To) {
			return false
		}
		sr = serve.ScoreRequest{Kind: serve.KindLink, From: *req.From, To: *req.To}
	case "time":
		words, ok := bag()
		if !ok || !valid(req.User) {
			return false
		}
		sr = serve.ScoreRequest{Kind: serve.KindTime, User: *req.User, Words: words}
	default: // topics, rank: the popularity prior has neither
		return false
	}
	res := eng.ScoreBatch(context.Background(), []serve.ScoreRequest{sr})
	if res[0].Err != nil {
		return false
	}

	var out any
	if r.name == "time" {
		out = struct {
			Slice      int    `json:"slice"`
			Generation uint64 `json:"generation"`
			ModelKey   string `json:"model_key"`
			Degraded   bool   `json:"degraded"`
		}{res[0].Slice, 0, fallbackModelKey, true}
	} else {
		out = degradedScore{Score: res[0].Score, ModelKey: fallbackModelKey, Degraded: true}
	}
	rt.cfg.Metrics.degradedAnswer()
	w.Header().Set("X-Cold-Model", fallbackModelKey)
	writeJSON(w, http.StatusOK, out)
	return true
}

// degradedItem answers one batch item locally from the fallback engine,
// rendered in the replica's per-item result shape. false means the item
// cannot be answered at all (no fallback, bad item, topics kind).
func (rt *Router) degradedItem(raw json.RawMessage) (json.RawMessage, bool) {
	eng := rt.cfg.Fallback
	if eng == nil {
		return nil, false
	}
	var req struct {
		Kind string `json:"kind"`
		fallbackRequest
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return nil, false
	}
	users := eng.Info().Users
	valid := func(v *int) bool { return v != nil && *v >= 0 && *v < users }
	bag := func() (text.BagOfWords, bool) {
		switch {
		case req.Words != nil:
			return text.NewBagOfWords(req.Words), true
		case req.Post != nil && rt.cfg.Posts != nil:
			return rt.cfg.Posts(*req.Post)
		default:
			return text.BagOfWords{}, false
		}
	}

	var sr serve.ScoreRequest
	switch req.Kind {
	case "retweet":
		words, ok := bag()
		if !ok || !valid(req.Publisher) || !valid(req.Candidate) {
			return nil, false
		}
		sr = serve.ScoreRequest{Kind: serve.KindRetweet,
			Publisher: *req.Publisher, Candidate: *req.Candidate, Words: words}
	case "link":
		if !valid(req.From) || !valid(req.To) {
			return nil, false
		}
		sr = serve.ScoreRequest{Kind: serve.KindLink, From: *req.From, To: *req.To}
	case "time":
		words, ok := bag()
		if !ok || !valid(req.User) {
			return nil, false
		}
		sr = serve.ScoreRequest{Kind: serve.KindTime, User: *req.User, Words: words}
	default: // topics: the popularity prior has no topic model
		return nil, false
	}
	res := eng.ScoreBatch(context.Background(), []serve.ScoreRequest{sr})
	if res[0].Err != nil {
		return nil, false
	}
	rt.cfg.Metrics.degradedAnswer()

	var out []byte
	if req.Kind == "time" {
		out, _ = json.Marshal(struct {
			Status   string `json:"status"`
			Slice    int    `json:"slice"`
			ModelKey string `json:"model_key"`
			Degraded bool   `json:"degraded"`
		}{"ok", res[0].Slice, fallbackModelKey, true})
	} else {
		out, _ = json.Marshal(struct {
			Status   string  `json:"status"`
			Score    float64 `json:"score"`
			ModelKey string  `json:"model_key"`
			Degraded bool    `json:"degraded"`
		}{"ok", res[0].Score, fallbackModelKey, true})
	}
	return out, true
}

// fallbackModelKey marks router-local degraded answers; it matches the
// key replicas report while serving from their own fallback engine.
const fallbackModelKey = "fallback"

type degradedScore struct {
	Score      float64 `json:"score"`
	Generation uint64  `json:"generation"`
	ModelKey   string  `json:"model_key"`
	Degraded   bool    `json:"degraded"`
}

// ---- status and liveness ----

// ReplicaStatus is one replica's externally visible state.
type ReplicaStatus struct {
	URL                 string `json:"url"`
	Up                  bool   `json:"up"`
	Draining            bool   `json:"draining,omitempty"`
	Degraded            bool   `json:"degraded,omitempty"`
	Lagging             bool   `json:"lagging,omitempty"`
	BrownoutLevel       int    `json:"brownout_level,omitempty"`
	Generation          uint64 `json:"generation"`
	ModelKey            string `json:"model_key,omitempty"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// ShardStatus is one shard's pool and breaker state.
type ShardStatus struct {
	Index    int             `json:"index"`
	Breaker  string          `json:"breaker"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// StatusReply is the /v1/cluster/status body: the shard map a client
// library needs to understand the fleet, plus the router's own health.
type StatusReply struct {
	Shards             []ShardStatus `json:"shards"`
	MajorityModelKey   string        `json:"majority_model_key,omitempty"`
	MajorityGeneration uint64        `json:"majority_generation"`
	RetryBudgetTokens  float64       `json:"retry_budget_tokens"`
	UptimeS            float64       `json:"uptime_s"`
}

// Status assembles the live shard map.
func (rt *Router) Status() StatusReply {
	key, gen := rt.majority()
	reply := StatusReply{
		MajorityModelKey:   key,
		MajorityGeneration: gen,
		RetryBudgetTokens:  rt.budget.value(),
		UptimeS:            time.Since(rt.start).Seconds(),
	}
	for i, pool := range rt.shards {
		ss := ShardStatus{Index: i, Breaker: rt.breakers[i].current().String()}
		for _, rep := range pool {
			st := rep.snapshot()
			ss.Replicas = append(ss.Replicas, ReplicaStatus{
				URL: rep.url, Up: st.up, Draining: st.draining, Degraded: st.degraded,
				Lagging:       key != "" && st.key != "" && st.key != key,
				BrownoutLevel: st.brownout,
				Generation:    st.gen, ModelKey: st.key,
				ConsecutiveFailures: st.consecFails, LastError: st.lastErr,
			})
		}
		reply.Shards = append(reply.Shards, ss)
	}
	return reply
}

func (rt *Router) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, rt.Status())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status, code := "ok", http.StatusOK
	if rt.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status   string  `json:"status"`
		UptimeS  float64 `json:"uptime_s"`
		Draining bool    `json:"draining"`
		Shards   int     `json:"shards"`
	}{status, time.Since(rt.start).Seconds(), rt.draining.Load(), len(rt.shards)})
}

// ---- error envelope (same shape as internal/serve) ----

type errorInfo struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

type errorBody struct {
	Error errorInfo `json:"error"`
}

// envelopeCode extracts the error code of an enveloped non-2xx body,
// empty when the body is not the shared envelope.
func envelopeCode(raw []byte) string {
	var eb errorBody
	if json.Unmarshal(raw, &eb) != nil {
		return ""
	}
	return eb.Error.Code
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorBody{Error: errorInfo{Code: code, Message: msg}})
}

// envelope normalises mux-generated plain-text 404/405 bodies into the
// shared JSON envelope; forwarded replica errors are already enveloped.
func envelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

type envelopeWriter struct {
	http.ResponseWriter
	wroteHeader bool
	intercepted bool
}

func (ew *envelopeWriter) WriteHeader(status int) {
	if ew.wroteHeader {
		return
	}
	ew.wroteHeader = true
	if status >= 400 && !strings.HasPrefix(ew.Header().Get("Content-Type"), "application/json") {
		ew.intercepted = true
		ew.Header().Del("Content-Length")
		ew.Header().Del("X-Content-Type-Options")
		ew.Header().Set("Content-Type", "application/json")
		ew.ResponseWriter.WriteHeader(status)
		code, msg := "error", http.StatusText(status)
		switch status {
		case http.StatusNotFound:
			code, msg = "not_found", "no such endpoint"
		case http.StatusMethodNotAllowed:
			code, msg = "method_not_allowed", "method not allowed for this endpoint"
		}
		json.NewEncoder(ew.ResponseWriter).Encode(errorBody{Error: errorInfo{Code: code, Message: msg}})
		return
	}
	ew.ResponseWriter.WriteHeader(status)
}

func (ew *envelopeWriter) Write(b []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.intercepted {
		return len(b), nil
	}
	return ew.ResponseWriter.Write(b)
}

// lockedRand is a seeded, mutex-guarded rand source: the router jitters
// from many goroutines, and chaos tests need reproducible draws.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}
