package cluster

import "sync/atomic"

// budget is the token retry budget: every routed request earns a
// fraction of a token, every retry or hedge spends a whole one, and the
// balance is capped at a burst. Steady-state, extra attempts are bounded
// at ratio × the request rate — a shard brownout degrades into slightly
// elevated latency, never into an amplifying retry storm.
//
// Tokens are held in milli-token units in one atomic int64; earn and
// take are lock-free CAS loops.
type budget struct {
	capMilli  int64
	earnMilli int64
	tokens    atomic.Int64
}

// newBudget builds a budget holding at most burst tokens, earning ratio
// tokens per routed request. The budget starts full, so a cold router
// can absorb an immediate fault burst.
func newBudget(burst int, ratio float64) *budget {
	if burst <= 0 {
		burst = 10
	}
	if ratio <= 0 {
		ratio = 0.1
	}
	b := &budget{capMilli: int64(burst) * 1000, earnMilli: int64(ratio * 1000)}
	if b.earnMilli < 1 {
		b.earnMilli = 1
	}
	b.tokens.Store(b.capMilli)
	return b
}

// earn credits one routed request's worth of retry allowance.
func (b *budget) earn() {
	for {
		cur := b.tokens.Load()
		next := cur + b.earnMilli
		if next > b.capMilli {
			next = b.capMilli
		}
		if next == cur || b.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// take withdraws one whole token; false means the budget is exhausted
// and the extra attempt must not be made.
func (b *budget) take() bool {
	for {
		cur := b.tokens.Load()
		if cur < 1000 {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// value reports the current balance in whole tokens, for status pages.
func (b *budget) value() float64 {
	return float64(b.tokens.Load()) / 1000
}
