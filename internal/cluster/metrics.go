package cluster

import (
	"net/http"

	"github.com/cold-diffusion/cold/internal/obs"
)

// routeNames labels the per-route request counters; it mirrors the
// forwarded /v1 prediction surface.
var routeNames = []string{"retweet", "link", "time", "topics", "batch", "rank"}

// Metrics is the routing tier's instrument set under the cold_cluster_*
// namespace. A nil *Metrics disables instrumentation; every method is
// nil-safe.
type Metrics struct {
	reg *obs.Registry

	requests map[string]*obs.Counter // cold_cluster_requests_total{route=...}

	ForwardSeconds *obs.Histogram // cold_cluster_forward_seconds

	Retries         *obs.Counter // cold_cluster_retries_total
	BudgetExhausted *obs.Counter // cold_cluster_retry_budget_exhausted_total
	Hedges          *obs.Counter // cold_cluster_hedges_total
	HedgeWins       *obs.Counter // cold_cluster_hedge_wins_total

	BreakerOpens *obs.Counter // cold_cluster_breaker_opens_total
	BreakerShed  *obs.Counter // cold_cluster_breaker_shed_total

	Probes        *obs.Counter // cold_cluster_probes_total
	ProbeFailures *obs.Counter // cold_cluster_probe_failures_total
	Ejections     *obs.Counter // cold_cluster_replica_ejections_total
	Readmissions  *obs.Counter // cold_cluster_replica_readmissions_total

	SkewDiscards    *obs.Counter // cold_cluster_generation_skew_total
	DegradedAnswers *obs.Counter // cold_cluster_degraded_answers_total
	ProxyErrors     *obs.Counter // cold_cluster_proxy_errors_total
	PressureRelays  *obs.Counter // cold_cluster_pressure_relays_total

	ReplicasUp      *obs.Gauge // cold_cluster_replicas_up
	ReplicasLagging *obs.Gauge // cold_cluster_replicas_lagging
	ReplicasHot     *obs.Gauge // cold_cluster_replicas_hot
	MajorityGen     *obs.Gauge // cold_cluster_majority_generation
}

// NewMetrics registers the routing instrument set on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:      reg,
		requests: make(map[string]*obs.Counter, len(routeNames)),
		ForwardSeconds: reg.Histogram("cold_cluster_forward_seconds",
			"End-to-end routed request latency, including retries and hedges.", nil),
		Retries: reg.Counter("cold_cluster_retries_total",
			"Forward attempts retried on another replica after a failure."),
		BudgetExhausted: reg.Counter("cold_cluster_retry_budget_exhausted_total",
			"Extra attempts suppressed because the retry budget was empty."),
		Hedges: reg.Counter("cold_cluster_hedges_total",
			"Tail-latency hedge requests launched."),
		HedgeWins: reg.Counter("cold_cluster_hedge_wins_total",
			"Hedge requests that answered before the primary attempt."),
		BreakerOpens: reg.Counter("cold_cluster_breaker_opens_total",
			"Shard circuit-breaker transitions into the open state."),
		BreakerShed: reg.Counter("cold_cluster_breaker_shed_total",
			"Requests shed because the shard breaker was open."),
		Probes: reg.Counter("cold_cluster_probes_total",
			"Active replica health probes sent."),
		ProbeFailures: reg.Counter("cold_cluster_probe_failures_total",
			"Active replica health probes that failed."),
		Ejections: reg.Counter("cold_cluster_replica_ejections_total",
			"Replicas ejected from rotation after consecutive failures."),
		Readmissions: reg.Counter("cold_cluster_replica_readmissions_total",
			"Ejected replicas readmitted after probe recovery."),
		SkewDiscards: reg.Counter("cold_cluster_generation_skew_total",
			"Replica responses discarded for not matching the request's pinned model generation."),
		DegradedAnswers: reg.Counter("cold_cluster_degraded_answers_total",
			"Requests answered by the router's degraded fallback engine."),
		ProxyErrors: reg.Counter("cold_cluster_proxy_errors_total",
			"Requests that exhausted every replica with no fallback available."),
		PressureRelays: reg.Counter("cold_cluster_pressure_relays_total",
			"Replica brownout/overload sheds relayed to the client without retry (breaker-neutral)."),
		ReplicasUp: reg.Gauge("cold_cluster_replicas_up",
			"Replicas currently in rotation."),
		ReplicasLagging: reg.Gauge("cold_cluster_replicas_lagging",
			"In-rotation replicas serving a non-majority model generation."),
		ReplicasHot: reg.Gauge("cold_cluster_replicas_hot",
			"In-rotation replicas reporting brownout level L3 or deeper."),
		MajorityGen: reg.Gauge("cold_cluster_majority_generation",
			"Fleet-majority model generation number."),
	}
	for _, route := range routeNames {
		m.requests[route] = reg.CounterL("cold_cluster_requests_total",
			`route="`+route+`"`, "Routed prediction requests by route.")
	}
	return m
}

// Handler exposes the underlying registry in Prometheus text format.
func (m *Metrics) Handler() http.Handler {
	if m == nil || m.reg == nil {
		return nil
	}
	return m.reg.Handler()
}

func (m *Metrics) request(route string) {
	if m == nil {
		return
	}
	m.requests[route].Inc()
}

func (m *Metrics) forwarded(seconds float64) {
	if m == nil {
		return
	}
	m.ForwardSeconds.Observe(seconds)
}

func (m *Metrics) retried() {
	if m == nil {
		return
	}
	m.Retries.Inc()
}

func (m *Metrics) budgetExhausted() {
	if m == nil {
		return
	}
	m.BudgetExhausted.Inc()
}

func (m *Metrics) hedged() {
	if m == nil {
		return
	}
	m.Hedges.Inc()
}

func (m *Metrics) hedgeWon() {
	if m == nil {
		return
	}
	m.HedgeWins.Inc()
}

func (m *Metrics) breakerOpened() {
	if m == nil {
		return
	}
	m.BreakerOpens.Inc()
}

func (m *Metrics) breakerShedOne() {
	if m == nil {
		return
	}
	m.BreakerShed.Inc()
}

func (m *Metrics) probed(failed bool) {
	if m == nil {
		return
	}
	m.Probes.Inc()
	if failed {
		m.ProbeFailures.Inc()
	}
}

func (m *Metrics) ejected() {
	if m == nil {
		return
	}
	m.Ejections.Inc()
}

func (m *Metrics) readmitted() {
	if m == nil {
		return
	}
	m.Readmissions.Inc()
}

func (m *Metrics) skewDiscarded() {
	if m == nil {
		return
	}
	m.SkewDiscards.Inc()
}

func (m *Metrics) degradedAnswer() {
	if m == nil {
		return
	}
	m.DegradedAnswers.Inc()
}

func (m *Metrics) proxyError() {
	if m == nil {
		return
	}
	m.ProxyErrors.Inc()
}

func (m *Metrics) pressureRelayed() {
	if m == nil {
		return
	}
	m.PressureRelays.Inc()
}

func (m *Metrics) fleet(up, lagging, hot int, majorityGen uint64) {
	if m == nil {
		return
	}
	m.ReplicasUp.Set(float64(up))
	m.ReplicasLagging.Set(float64(lagging))
	m.ReplicasHot.Set(float64(hot))
	m.MajorityGen.Set(float64(majorityGen))
}
