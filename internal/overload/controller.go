package overload

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Shed errors returned by Admit. The serving layer maps them onto the
// /v1 error envelope (429 overloaded, 503 deadline_unmeetable /
// deadline_exceeded).
var (
	ErrQueueFull          = errors.New("overload: admission queue full")
	ErrDeadlineUnmeetable = errors.New("overload: deadline cannot be met at the current service rate")
	ErrExpiredInQueue     = errors.New("overload: deadline expired while queued")
)

// Config tunes a Controller. Zero values get the defaults documented
// per field.
type Config struct {
	// Ceiling is the concurrency ceiling (the old static MaxInFlight).
	// Required (> 0).
	Ceiling int
	// Floor is the limiter's lower bound; 0 → Ceiling/16 (min 1).
	// Negative disables adaptation entirely: the limit is pinned at
	// Ceiling, reproducing the static admission pool.
	Floor int
	// QueueCap bounds the total queued waiters across all tiers;
	// 0 → 4 × Ceiling. Negative disables queuing: over-limit arrivals
	// shed immediately with ErrQueueFull (the pre-queue behaviour).
	QueueCap int
	// Window / Tolerance / Backoff pass through to the Limiter.
	Window    int
	Tolerance float64
	Backoff   float64
	// Now is the clock, injectable for tests; nil → time.Now.
	Now func() time.Time
	// OnShed, when set, is called for every shed decision (counting
	// hooks). It runs with the controller's lock held, so it must be
	// cheap and must not call back into the Controller.
	OnShed func(tier Tier, reason Reason)
}

// waiter is one queued admission request. Its lifecycle is guarded by
// the controller's mutex: exactly one of grant/shed/abandon wins, and
// the outcome is delivered once on ready (buffered, never blocks the
// deliverer).
type waiter struct {
	tier     Tier
	deadline time.Time // zero = none
	ready    chan waiterOutcome
	state    waiterState
}

type waiterState int

const (
	waiting waiterState = iota
	granted
	gone // shed, expired, or abandoned
)

type waiterOutcome struct {
	err     error
	granted time.Time
}

// Ticket is an admitted request's slot handle. Release it exactly once
// when the work finishes (including panics — the serving layer releases
// in a defer).
type Ticket struct {
	c       *Controller
	tier    Tier
	granted time.Time
}

// Tier reports the tier the ticket was admitted under.
func (t *Ticket) Tier() Tier { return t.tier }

// Stats is the controller's observable state for /v1/stats, healthz
// and the metrics gauges.
type Stats struct {
	Limit    int     `json:"limit"`
	Ceiling  int     `json:"ceiling"`
	InFlight int     `json:"in_flight"`
	Queued   int     `json:"queued"`
	QueueCap int     `json:"queue_cap"`
	Pressure float64 `json:"pressure"`
	// RatePerSec is the smoothed completion rate the unmeetable-
	// deadline estimate divides by.
	RatePerSec float64 `json:"rate_per_sec"`
	Backoffs   uint64  `json:"limit_backoffs"`
	Grows      uint64  `json:"limit_grows"`
	// Sheds counts shed decisions by reason (brownout sheds are
	// recorded by the serving layer via RecordShed).
	Sheds map[Reason]uint64 `json:"sheds"`
}

// Controller is the deadline-aware priority admission queue in front of
// the AIMD limiter. Admit blocks (briefly) for a slot; Release returns
// it and feeds the limiter. There is no resident goroutine: slots are
// handed off to waiters at Release time, mirroring the leader-election
// micro-batcher's design.
type Controller struct {
	cfg      Config
	now      func() time.Time
	queueCap int

	mu       sync.Mutex
	lim      *Limiter
	inFlight int
	queues   [numTiers][]*waiter
	queued   int // waiters in state waiting, across all tiers

	// rate is the EWMA completion rate (per second) used for the
	// shed-at-enqueue wait estimate; 0 until warmed up.
	rate     float64
	lastDone time.Time

	// shedEWMA tracks the recent shed fraction of admission attempts,
	// folded into the pressure signal so a queue-less (QueueCap < 0)
	// configuration still reports pressure when it sheds.
	shedEWMA float64

	sheds [numTiers]map[Reason]uint64
}

// NewController builds the admission controller.
func NewController(cfg Config) *Controller {
	c := &Controller{cfg: cfg, now: cfg.Now}
	if c.now == nil {
		c.now = time.Now
	}
	c.lim = NewLimiter(LimiterConfig{
		Ceiling:   cfg.Ceiling,
		Floor:     cfg.Floor,
		Window:    cfg.Window,
		Tolerance: cfg.Tolerance,
		Backoff:   cfg.Backoff,
	})
	switch {
	case cfg.QueueCap < 0:
		c.queueCap = 0
	case cfg.QueueCap == 0:
		c.queueCap = 4 * max(1, cfg.Ceiling)
	default:
		c.queueCap = cfg.QueueCap
	}
	for i := range c.sheds {
		c.sheds[i] = make(map[Reason]uint64, 4)
	}
	return c
}

// Adaptive reports whether the limit adjusts (false in static mode).
func (c *Controller) Adaptive() bool { return c.lim.Adaptive() }

// Limit is the current learned concurrency limit.
func (c *Controller) Limit() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lim.Limit()
}

// Admit asks for an admission slot for one request. deadline is the
// request's propagated absolute deadline (zero = none). It returns a
// Ticket immediately when a slot is free and nobody of equal or higher
// priority is waiting; otherwise it queues and blocks until a slot is
// handed off, the deadline passes (ErrExpiredInQueue), the queue
// refuses it (ErrQueueFull, ErrDeadlineUnmeetable), or ctx is done.
func (c *Controller) Admit(ctx context.Context, tier Tier, deadline time.Time) (*Ticket, error) {
	if tier < 0 || int(tier) >= numTiers {
		tier = TierBackground
	}
	now := c.now()
	c.mu.Lock()
	c.sweepLocked(now)

	// Dead on arrival: never burn a slot on work that cannot finish in
	// time. (The serving layer normally rejects these before Admit;
	// this is the defence for direct users of the package.)
	if !deadline.IsZero() && !now.Before(deadline) {
		c.shedLocked(tier, ReasonDeadlineUnmeetable)
		c.mu.Unlock()
		return nil, ErrDeadlineUnmeetable
	}

	// Fast path: free slot and no same-or-higher-priority waiter whose
	// place in line we would be stealing.
	if c.inFlight < c.lim.Limit() && !c.waitingAtOrAboveLocked(tier) {
		c.inFlight++
		c.shedEWMA += shedAlpha * (0 - c.shedEWMA)
		c.mu.Unlock()
		return &Ticket{c: c, tier: tier, granted: now}, nil
	}

	// Queue disabled: the old static-pool behaviour, an instant shed.
	if c.queueCap == 0 {
		c.shedLocked(tier, ReasonQueueFull)
		c.mu.Unlock()
		return nil, ErrQueueFull
	}

	// Shed-at-enqueue: if the wait for everything ahead of this request
	// already overruns its deadline at the current service rate, refuse
	// it now instead of queuing doomed work.
	if !deadline.IsZero() && c.rate > 0 {
		ahead := float64(c.inFlight + c.waitersAtOrAboveLocked(tier) + 1)
		wait := time.Duration(ahead / c.rate * float64(time.Second))
		if now.Add(wait).After(deadline) {
			c.shedLocked(tier, ReasonDeadlineUnmeetable)
			c.mu.Unlock()
			return nil, ErrDeadlineUnmeetable
		}
	}

	if c.queued >= c.queueCap && !c.evictLowerLocked(tier) {
		c.shedLocked(tier, ReasonQueueFull)
		c.mu.Unlock()
		return nil, ErrQueueFull
	}

	w := &waiter{tier: tier, deadline: deadline, ready: make(chan waiterOutcome, 1)}
	c.queues[tier] = append(c.queues[tier], w)
	c.queued++
	c.mu.Unlock()

	var expire <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(deadline.Sub(now))
		defer t.Stop()
		expire = t.C
	}
	select {
	case out := <-w.ready:
		if out.err != nil {
			return nil, out.err
		}
		return &Ticket{c: c, tier: tier, granted: out.granted}, nil
	case <-expire:
		if tk := c.abandon(w, ReasonExpiredInQueue); tk != nil {
			// Lost the race: a slot was granted between the timer firing
			// and the lock. Hand it straight back (it counts as a
			// deadline miss — the work never ran but the slot cycled).
			c.Release(tk, true)
		}
		return nil, ErrExpiredInQueue
	case <-ctx.Done():
		if tk := c.abandon(w, ""); tk != nil {
			c.Release(tk, false)
		}
		return nil, ctx.Err()
	}
}

// Release returns an admitted slot, feeds the limiter with the
// completion (latency and whether the request's deadline was missed),
// and hands the slot to the highest-priority live waiter. Safe to call
// exactly once per Ticket.
func (c *Controller) Release(t *Ticket, deadlineMiss bool) {
	if t == nil || t.c != c {
		return
	}
	now := c.now()
	c.mu.Lock()
	// Saturation is judged before decrementing: this completion ran
	// with inFlight at (or beyond, after a backoff) the limit, or with
	// work queued behind it.
	saturated := c.inFlight >= c.lim.Limit() || c.queued > 0
	c.inFlight--
	c.lim.Observe(now.Sub(t.granted), deadlineMiss, saturated)
	if !c.lastDone.IsZero() {
		if dt := now.Sub(c.lastDone).Seconds(); dt > 0 {
			inst := 1.0 / dt
			if inst > maxRate {
				inst = maxRate
			}
			if c.rate == 0 {
				c.rate = inst
			} else {
				c.rate += rateAlpha * (inst - c.rate)
			}
		}
	}
	c.lastDone = now
	c.sweepLocked(now)
	c.grantLocked(now)
	c.mu.Unlock()
}

// RecordShed counts an externally decided shed (the brownout ladder's
// pre-admission sheds) so /v1/stats and the OnShed hook see every
// reason through one funnel. Brownout sheds deliberately do NOT feed
// the pressure signal: pressure driven by its own consequences would
// latch the ladder at its top level.
func (c *Controller) RecordShed(tier Tier, reason Reason) {
	if tier < 0 || int(tier) >= numTiers {
		tier = TierBackground
	}
	c.mu.Lock()
	c.sheds[tier][reason]++
	if c.cfg.OnShed != nil {
		c.cfg.OnShed(tier, reason)
	}
	c.mu.Unlock()
}

// Pressure is the controller's load signal in [0, 1]: half utilisation
// (in-flight / limit), half queue fill, overridden by the recent shed
// fraction when that is higher (so queue-less configurations still
// report pressure while shedding).
func (c *Controller) Pressure() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pressureLocked()
}

func (c *Controller) pressureLocked() float64 {
	limit := float64(c.lim.Limit())
	util := float64(c.inFlight) / limit
	if util > 1 {
		util = 1
	}
	var fill float64
	if c.queueCap > 0 {
		fill = float64(c.queued) / float64(c.queueCap)
		if fill > 1 {
			fill = 1
		}
	}
	p := 0.5*util + 0.5*fill
	if c.shedEWMA > p {
		p = c.shedEWMA
	}
	return p
}

// Stats snapshots the controller's observable state.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	sheds := make(map[Reason]uint64, 4)
	for i := range c.sheds {
		for reason, n := range c.sheds[i] {
			sheds[reason] += n
		}
	}
	return Stats{
		Limit:      c.lim.Limit(),
		Ceiling:    int(c.lim.ceiling),
		InFlight:   c.inFlight,
		Queued:     c.queued,
		QueueCap:   c.queueCap,
		Pressure:   c.pressureLocked(),
		RatePerSec: c.rate,
		Backoffs:   c.lim.Backoffs(),
		Grows:      c.lim.Grows(),
		Sheds:      sheds,
	}
}

// ShedCount reports the shed count for one (tier, reason) pair.
func (c *Controller) ShedCount(tier Tier, reason Reason) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sheds[tier][reason]
}

const (
	rateAlpha = 0.05
	shedAlpha = 0.2
	maxRate   = 1e6 // completions/sec cap on one inter-completion gap
)

// ---- internals (all called with c.mu held) ----

func (c *Controller) shedLocked(tier Tier, reason Reason) {
	c.sheds[tier][reason]++
	c.shedEWMA += shedAlpha * (1 - c.shedEWMA)
	if c.cfg.OnShed != nil {
		c.cfg.OnShed(tier, reason)
	}
}

// waitingAtOrAboveLocked reports whether any waiter of priority >= tier
// (numerically <=) is queued — the fast path must not jump that line.
func (c *Controller) waitingAtOrAboveLocked(tier Tier) bool {
	for t := 0; t <= int(tier); t++ {
		for _, w := range c.queues[t] {
			if w.state == waiting {
				return true
			}
		}
	}
	return false
}

// waitersAtOrAboveLocked counts the waiters that would be served before
// a new arrival of the given tier.
func (c *Controller) waitersAtOrAboveLocked(tier Tier) int {
	n := 0
	for t := 0; t <= int(tier); t++ {
		for _, w := range c.queues[t] {
			if w.state == waiting {
				n++
			}
		}
	}
	return n
}

// sweepLocked expires queued waiters whose deadline has passed and
// compacts lazily removed entries — the CoDel-flavoured half of the
// queue: nothing sits in line after it is already dead.
func (c *Controller) sweepLocked(now time.Time) {
	for t := range c.queues {
		q := c.queues[t]
		kept := q[:0]
		for _, w := range q {
			switch {
			case w.state != waiting:
				// granted or gone: drop from the slice.
			case !w.deadline.IsZero() && !now.Before(w.deadline):
				w.state = gone
				c.queued--
				c.shedLocked(Tier(t), ReasonExpiredInQueue)
				w.ready <- waiterOutcome{err: ErrExpiredInQueue}
			default:
				kept = append(kept, w)
			}
		}
		// Zero the tail so dropped waiters don't pin memory.
		for i := len(kept); i < len(q); i++ {
			q[i] = nil
		}
		c.queues[t] = kept
	}
}

// grantLocked hands freed slots to the highest-priority live waiters.
func (c *Controller) grantLocked(now time.Time) {
	for c.inFlight < c.lim.Limit() {
		w := c.popLocked()
		if w == nil {
			return
		}
		w.state = granted
		c.inFlight++
		w.ready <- waiterOutcome{granted: now}
	}
}

// popLocked removes and returns the highest-priority waiting waiter
// (FIFO within a tier), or nil.
func (c *Controller) popLocked() *waiter {
	for t := range c.queues {
		q := c.queues[t]
		for i, w := range q {
			if w.state == waiting {
				c.queues[t] = q[i+1:]
				c.queued--
				return w
			}
			q[i] = nil
		}
		c.queues[t] = q[:0]
	}
	return nil
}

// evictLowerLocked makes room in a full queue for a higher-priority
// arrival by shedding the NEWEST waiter of the LOWEST-priority occupied
// tier below it (newest: it has waited least, so evicting it wastes the
// least invested queue time). Returns false when nothing outranked is
// queued — the arrival itself must shed.
func (c *Controller) evictLowerLocked(tier Tier) bool {
	for t := numTiers - 1; t > int(tier); t-- {
		q := c.queues[t]
		for i := len(q) - 1; i >= 0; i-- {
			if w := q[i]; w.state == waiting {
				w.state = gone
				c.queued--
				c.shedLocked(Tier(t), ReasonQueueFull)
				w.ready <- waiterOutcome{err: ErrQueueFull}
				return true
			}
		}
	}
	return false
}

// abandon removes a waiter whose Admit call is giving up (deadline
// timer or context cancellation). If the waiter was already granted —
// the slot handoff raced the timer — it returns a Ticket the caller
// must Release; otherwise it returns nil after counting the shed
// (reason "" counts nothing: a client cancellation is not a shed).
func (c *Controller) abandon(w *waiter, reason Reason) *Ticket {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch w.state {
	case granted:
		out := <-w.ready
		return &Ticket{c: c, tier: w.tier, granted: out.granted}
	case waiting:
		w.state = gone
		c.queued--
		if reason != "" {
			c.shedLocked(w.tier, reason)
		}
	}
	return nil
}
