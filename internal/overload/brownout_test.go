package overload

import (
	"testing"
	"time"
)

func TestLadderClimbsOneLevelPerObservation(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Now: clk.Now})
	if l.Level() != 0 {
		t.Fatalf("initial level = %d", l.Level())
	}
	// Saturating pressure climbs one rung per sample — never skipping
	// the intermediate degradations.
	want := []int{1, 2, 3, 4, 4}
	for i, w := range want {
		if got := l.Observe(1.0); got != w {
			t.Fatalf("observation %d: level = %d, want %d", i, got, w)
		}
	}
}

func TestLadderEntryThresholdsGateEachRung(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Now: clk.Now})
	// 0.60 clears Enter[0]=0.55 but not Enter[1]=0.70: the ladder
	// enters L1 and stays there no matter how many samples arrive.
	for i := 0; i < 5; i++ {
		l.Observe(0.60)
	}
	if got := l.Level(); got != 1 {
		t.Fatalf("level = %d at pressure 0.60, want 1", got)
	}
	if got := l.Observe(0.72); got != 2 {
		t.Fatalf("level = %d at pressure 0.72, want 2", got)
	}
}

func TestLadderHysteresisHoldsBeforeSteppingDown(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Hold: time.Second, Now: clk.Now})
	l.Observe(1.0) // L1
	l.Observe(1.0) // L2

	// Pressure collapses, but the dwell time hasn't elapsed: the level
	// must hold (no flapping across a noisy boundary).
	if got := l.Observe(0); got != 2 {
		t.Fatalf("level = %d immediately after pressure drop, want held 2", got)
	}
	clk.Advance(1100 * time.Millisecond)
	if got := l.Observe(0); got != 1 {
		t.Fatalf("level = %d after hold, want 1", got)
	}
	// One step per hold interval: straight back to 0 is not allowed.
	if got := l.Observe(0); got != 1 {
		t.Fatalf("level = %d, want still 1 (one step per hold)", got)
	}
	clk.Advance(1100 * time.Millisecond)
	if got := l.Observe(0); got != 0 {
		t.Fatalf("level = %d after second hold, want 0", got)
	}
}

func TestLadderExitBelowEntry(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Hold: time.Second, Now: clk.Now})
	l.Observe(0.60) // L1 (Enter[0]=0.55)
	clk.Advance(2 * time.Second)
	// 0.50 is under the entry but above Exit[0]=0.40: still L1.
	if got := l.Observe(0.50); got != 1 {
		t.Fatalf("level = %d in the hysteresis band, want 1", got)
	}
	clk.Advance(2 * time.Second)
	if got := l.Observe(0.35); got != 0 {
		t.Fatalf("level = %d below the exit threshold, want 0", got)
	}
}

func TestLadderMonotoneRecovery(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Hold: 100 * time.Millisecond, Now: clk.Now})
	for i := 0; i < 4; i++ {
		l.Observe(1.0)
	}
	if l.Level() != 4 {
		t.Fatalf("level = %d, want 4", l.Level())
	}
	// Once load drops, the level must only ever decrease.
	prev := l.Level()
	for i := 0; i < 20; i++ {
		clk.Advance(60 * time.Millisecond)
		got := l.Observe(0.1)
		if got > prev {
			t.Fatalf("level rose %d -> %d during recovery", prev, got)
		}
		prev = got
	}
	if prev != 0 {
		t.Fatalf("level = %d after recovery, want 0", prev)
	}
}

func TestLadderForce(t *testing.T) {
	clk := newFakeClock()
	l := NewLadder(LadderConfig{Hold: time.Second, Now: clk.Now})
	l.Force(3)
	if got := l.Level(); got != 3 {
		t.Fatalf("forced level = %d, want 3", got)
	}
	// A forced level decays like any other: hold, then one step down.
	if got := l.Observe(0); got != 3 {
		t.Fatalf("level = %d before hold elapsed, want 3", got)
	}
	clk.Advance(1100 * time.Millisecond)
	if got := l.Observe(0); got != 2 {
		t.Fatalf("level = %d after hold, want 2", got)
	}
	l.Force(99)
	if got := l.Level(); got != MaxLevel {
		t.Fatalf("Force must clamp to MaxLevel, got %d", got)
	}
	l.Force(-5)
	if got := l.Level(); got != 0 {
		t.Fatalf("Force must clamp to 0, got %d", got)
	}
}
