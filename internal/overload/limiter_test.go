package overload

import (
	"testing"
	"time"
)

// fill pushes one full adjustment window of identical observations.
func fill(l *Limiter, lat time.Duration, miss, saturated bool) {
	for i := 0; i < 16; i++ {
		l.Observe(lat, miss, saturated)
	}
}

func TestLimiterGrowsOnlyUnderSaturation(t *testing.T) {
	l := NewLimiter(LimiterConfig{Ceiling: 64, Floor: 4})
	// Back off once so there is headroom to grow into.
	fill(l, time.Millisecond, true, true)
	backedOff := l.Limit()
	if backedOff >= 64 {
		t.Fatalf("limit %d did not back off from the ceiling", backedOff)
	}

	// Healthy but unsaturated windows must not grow the limit.
	fill(l, time.Millisecond, false, false)
	if got := l.Limit(); got != backedOff {
		t.Fatalf("idle window grew the limit: %d -> %d", backedOff, got)
	}

	// Healthy saturated windows grow additively, one per window.
	fill(l, time.Millisecond, false, true)
	if got := l.Limit(); got != backedOff+1 {
		t.Fatalf("saturated window: limit = %d, want %d", got, backedOff+1)
	}
	if l.Grows() != 1 {
		t.Fatalf("grows = %d, want 1", l.Grows())
	}
}

func TestLimiterBacksOffMultiplicativelyOnMisses(t *testing.T) {
	l := NewLimiter(LimiterConfig{Ceiling: 64, Floor: 4})
	if l.Limit() != 64 {
		t.Fatalf("initial limit = %d, want the ceiling", l.Limit())
	}
	fill(l, time.Millisecond, true, false)
	if got := l.Limit(); got != 48 { // 64 × 0.75
		t.Fatalf("after one missed window: limit = %d, want 48", got)
	}
	// Repeated misses walk the limit down to the floor and no further.
	for i := 0; i < 40; i++ {
		fill(l, time.Millisecond, true, false)
	}
	if got := l.Limit(); got != 4 {
		t.Fatalf("limit = %d, want the floor 4", got)
	}
	if l.Backoffs() == 0 {
		t.Fatal("backoffs not counted")
	}
}

func TestLimiterBacksOffOnLatencyInflation(t *testing.T) {
	l := NewLimiter(LimiterConfig{Ceiling: 32})
	// Establish a healthy long window at ~1ms.
	for i := 0; i < 20; i++ {
		fill(l, time.Millisecond, false, false)
	}
	start := l.Limit()
	// The hot path suddenly takes 50ms: short inflates past 2× long.
	fill(l, 50*time.Millisecond, false, true)
	if got := l.Limit(); got >= start {
		t.Fatalf("latency inflation did not back off: %d -> %d", start, got)
	}
	if l.Inflation() <= 1 {
		t.Fatalf("inflation = %v, want > 1", l.Inflation())
	}
}

func TestLimiterFrozenStaticMode(t *testing.T) {
	l := NewLimiter(LimiterConfig{Ceiling: 16, Floor: -1})
	if l.Adaptive() {
		t.Fatal("Floor < 0 must freeze the limiter")
	}
	fill(l, time.Second, true, true)
	fill(l, time.Second, true, true)
	if got := l.Limit(); got != 16 {
		t.Fatalf("frozen limit moved: %d", got)
	}
	if l.Backoffs() != 0 || l.Grows() != 0 {
		t.Fatalf("frozen limiter adjusted: backoffs=%d grows=%d", l.Backoffs(), l.Grows())
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := NewLimiter(LimiterConfig{Ceiling: 64})
	if got := int(l.floor); got != 4 { // 64/16
		t.Fatalf("default floor = %d, want 4", got)
	}
	if !l.Adaptive() {
		t.Fatal("default limiter must be adaptive")
	}
}
