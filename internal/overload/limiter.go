package overload

import "time"

// LimiterConfig tunes the AIMD concurrency limiter. Zero values get
// the defaults documented per field.
type LimiterConfig struct {
	// Ceiling is the hard upper bound on the learned limit — the old
	// static MaxInFlight. Required (> 0).
	Ceiling int
	// Floor is the lower bound the limit can back off to. 0 →
	// max(1, Ceiling/16). Negative freezes the limiter at Ceiling
	// (static admission, the pre-adaptive behaviour).
	Floor int
	// Window is the number of completions per adjustment decision;
	// 0 → 16. Smaller reacts faster, larger is smoother.
	Window int
	// Tolerance is the short/long latency inflation ratio that triggers
	// a multiplicative backoff; 0 → 2.0.
	Tolerance float64
	// Backoff is the multiplicative factor applied on backoff;
	// 0 → 0.75.
	Backoff float64
	// ShortAlpha / LongAlpha are the EWMA smoothing factors of the
	// short- and long-window latency trackers; 0 → 0.3 / 0.02.
	ShortAlpha float64
	LongAlpha  float64
}

// Limiter is a gradient/AIMD concurrency limiter. It watches completion
// latencies through two EWMAs — a twitchy short window and a slow long
// window that remembers what "healthy" looked like — plus deadline
// misses. At every Window-th completion it makes one decision:
//
//   - any deadline miss, or short > Tolerance × long (latency
//     inflation): limit ×= Backoff, floored at Floor;
//   - otherwise, if the window ever saw the limit saturated:
//     limit += 1, capped at Ceiling.
//
// Growing only under saturation keeps the limit parked wherever it was
// on an idle box instead of creeping to the ceiling for free.
//
// Limiter is NOT safe for concurrent use; the Controller serialises
// access under its own mutex. Use it directly only in single-threaded
// tests and sims.
type Limiter struct {
	floor, ceiling float64
	limit          float64
	frozen         bool // Floor < 0: static admission, never adjust

	short, long           float64 // latency EWMAs, seconds
	shortAlpha, longAlpha float64
	tolerance             float64
	backoff               float64
	window                int

	seen      int  // completions in the current window
	misses    int  // deadline misses in the current window
	saturated bool // the window saw in-flight at the limit (or a queue)

	backoffs uint64
	grows    uint64
}

// NewLimiter builds a limiter starting at its Ceiling: an unloaded
// server behaves exactly like the static pool until the first backoff.
func NewLimiter(cfg LimiterConfig) *Limiter {
	if cfg.Ceiling <= 0 {
		cfg.Ceiling = 1
	}
	l := &Limiter{
		ceiling:    float64(cfg.Ceiling),
		limit:      float64(cfg.Ceiling),
		tolerance:  cfg.Tolerance,
		backoff:    cfg.Backoff,
		shortAlpha: cfg.ShortAlpha,
		longAlpha:  cfg.LongAlpha,
		window:     cfg.Window,
	}
	switch {
	case cfg.Floor < 0:
		l.floor, l.frozen = l.ceiling, true
	case cfg.Floor == 0:
		l.floor = float64(max(1, cfg.Ceiling/16))
	default:
		l.floor = float64(min(cfg.Floor, cfg.Ceiling))
	}
	if l.window <= 0 {
		l.window = 16
	}
	if l.tolerance <= 1 {
		l.tolerance = 2.0
	}
	if l.backoff <= 0 || l.backoff >= 1 {
		l.backoff = 0.75
	}
	if l.shortAlpha <= 0 || l.shortAlpha > 1 {
		l.shortAlpha = 0.3
	}
	if l.longAlpha <= 0 || l.longAlpha > 1 {
		l.longAlpha = 0.02
	}
	return l
}

// Limit is the current learned concurrency limit, always in
// [Floor, Ceiling].
func (l *Limiter) Limit() int { return int(l.limit) }

// Adaptive reports whether the limiter adjusts at all (false in the
// frozen static-admission mode).
func (l *Limiter) Adaptive() bool { return !l.frozen }

// Backoffs and Grows count adjustment decisions, for /v1/stats and the
// recovery assertions in tests.
func (l *Limiter) Backoffs() uint64 { return l.backoffs }
func (l *Limiter) Grows() uint64    { return l.grows }

// Inflation is the short/long latency ratio (1 = steady state, higher
// = the hot path is slowing down). 0 until the first observation.
func (l *Limiter) Inflation() float64 {
	if l.long <= 0 {
		return 0
	}
	return l.short / l.long
}

// Observe records one completion: its in-slot latency, whether it
// missed its deadline, and whether the limiter was saturated while it
// ran. Every Window-th call makes one AIMD adjustment.
func (l *Limiter) Observe(latency time.Duration, deadlineMiss, saturated bool) {
	sec := latency.Seconds()
	if sec < 0 {
		sec = 0
	}
	if l.long == 0 {
		l.short, l.long = sec, sec
	} else {
		l.short += l.shortAlpha * (sec - l.short)
		l.long += l.longAlpha * (sec - l.long)
	}
	if deadlineMiss {
		l.misses++
	}
	if saturated {
		l.saturated = true
	}
	l.seen++
	if l.seen < l.window {
		return
	}
	if !l.frozen {
		inflated := l.long > 0 && l.short > l.tolerance*l.long
		switch {
		case l.misses > 0 || inflated:
			l.limit *= l.backoff
			if l.limit < l.floor {
				l.limit = l.floor
			}
			l.backoffs++
		case l.saturated:
			l.limit++
			if l.limit > l.ceiling {
				l.limit = l.ceiling
			}
			l.grows++
		}
	}
	l.seen, l.misses, l.saturated = 0, 0, false
}
