package overload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for the deterministic
// controller tests (the blocking-queue tests use the real clock with
// short waits instead, because Admit's expiry timer is a real timer).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestControllerFastPathAndRelease(t *testing.T) {
	c := NewController(Config{Ceiling: 2})
	tk1, err := c.Admit(context.Background(), TierInteractive, time.Time{})
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	tk2, err := c.Admit(context.Background(), TierBatch, time.Time{})
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	st := c.Stats()
	if st.InFlight != 2 || st.Limit != 2 {
		t.Fatalf("stats = %+v, want 2 in flight at limit 2", st)
	}
	c.Release(tk1, false)
	c.Release(tk2, false)
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("in flight after release = %d", got)
	}
}

func TestControllerPriorityOrdering(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: 8})
	hold, err := c.Admit(context.Background(), TierInteractive, time.Time{})
	if err != nil {
		t.Fatalf("hold: %v", err)
	}

	type result struct {
		tier Tier
		at   time.Time
	}
	order := make(chan result, 2)
	var started sync.WaitGroup
	admit := func(tier Tier) {
		started.Done()
		tk, err := c.Admit(context.Background(), tier, time.Time{})
		if err != nil {
			t.Errorf("admit %v: %v", tier, err)
			return
		}
		order <- result{tier, time.Now()}
		time.Sleep(5 * time.Millisecond)
		c.Release(tk, false)
	}
	// Background queues first, interactive second; the slot must still
	// go to interactive first.
	started.Add(1)
	go admit(TierBackground)
	started.Wait()
	waitQueued(t, c, 1)
	started.Add(1)
	go admit(TierInteractive)
	started.Wait()
	waitQueued(t, c, 2)

	c.Release(hold, false)
	first := <-order
	second := <-order
	if first.tier != TierInteractive || second.tier != TierBackground {
		t.Fatalf("grant order = %v, %v; want interactive first", first.tier, second.tier)
	}
}

// waitQueued polls until the queue depth reaches n (the admit
// goroutines enqueue asynchronously).
func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Queued < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, c.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestControllerQueueFullAndEviction(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: 1})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)

	// Fill the queue with a background waiter.
	bgErr := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), TierBackground, time.Time{})
		bgErr <- err
	}()
	waitQueued(t, c, 1)

	// Same-or-lower priority arrivals shed immediately…
	if _, err := c.Admit(context.Background(), TierBackground, time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("background into a full queue: %v, want ErrQueueFull", err)
	}
	if got := c.ShedCount(TierBackground, ReasonQueueFull); got != 1 {
		t.Fatalf("queue_full shed count = %d, want 1", got)
	}

	// …but an interactive arrival evicts the queued background waiter.
	intDone := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background(), TierInteractive, time.Time{})
		if tk != nil {
			defer c.Release(tk, false)
		}
		intDone <- err
	}()
	if err := <-bgErr; !errors.Is(err, ErrQueueFull) {
		t.Fatalf("evicted background waiter got %v, want ErrQueueFull", err)
	}
	c.Release(hold, false)
	if err := <-intDone; err != nil {
		t.Fatalf("interactive after eviction: %v", err)
	}
}

func TestControllerQueueDisabledShedsInstantly(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: -1})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)
	start := time.Now()
	_, err := c.Admit(context.Background(), TierInteractive, time.Time{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("queue-less shed must not block")
	}
}

func TestControllerDeadOnArrival(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Ceiling: 4, Now: clk.Now})
	_, err := c.Admit(context.Background(), TierInteractive, clk.Now().Add(-time.Millisecond))
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
}

func TestControllerShedsUnmeetableDeadlineAtEnqueue(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Ceiling: 1, QueueCap: 8, Now: clk.Now})

	// Warm the service-rate estimate at ~10 completions/sec.
	for i := 0; i < 5; i++ {
		tk, err := c.Admit(context.Background(), TierInteractive, time.Time{})
		if err != nil {
			t.Fatalf("warmup admit: %v", err)
		}
		clk.Advance(100 * time.Millisecond)
		c.Release(tk, false)
	}
	if rate := c.Stats().RatePerSec; rate < 5 || rate > 20 {
		t.Fatalf("rate = %v, want ~10/s", rate)
	}

	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)

	// Two work units ahead at ~100ms each: a 50ms deadline is doomed
	// and must shed at enqueue, without blocking.
	_, err := c.Admit(context.Background(), TierInteractive, clk.Now().Add(50*time.Millisecond))
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
	if got := c.ShedCount(TierInteractive, ReasonDeadlineUnmeetable); got == 0 {
		t.Fatal("deadline_unmeetable shed not counted")
	}

	// A lavish deadline still queues fine.
	done := make(chan error, 1)
	go func() {
		tk, err := c.Admit(context.Background(), TierInteractive, time.Now().Add(time.Hour))
		if tk != nil {
			c.Release(tk, false)
		}
		done <- err
	}()
	waitQueued(t, c, 1)
	c.Release(hold, false)
	if err := <-done; err != nil {
		t.Fatalf("meetable deadline: %v", err)
	}
}

func TestControllerExpiresWhileQueued(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: 8})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})

	start := time.Now()
	_, err := c.Admit(context.Background(), TierBatch, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, ErrExpiredInQueue) {
		t.Fatalf("err = %v, want ErrExpiredInQueue", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("expired after only %v; must have actually queued", waited)
	}
	if got := c.ShedCount(TierBatch, ReasonExpiredInQueue); got != 1 {
		t.Fatalf("expired_in_queue shed count = %d, want 1", got)
	}
	c.Release(hold, false)
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("in flight = %d after everything drained", got)
	}
}

func TestControllerContextCancelWhileQueued(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: 8})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, TierInteractive, time.Time{})
		done <- err
	}()
	waitQueued(t, c, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A client cancellation is not a shed.
	if got := c.ShedCount(TierInteractive, ReasonExpiredInQueue); got != 0 {
		t.Fatalf("cancellation miscounted as a shed: %d", got)
	}
}

func TestControllerPressureSignal(t *testing.T) {
	c := NewController(Config{Ceiling: 2, QueueCap: 2})
	if p := c.Pressure(); p != 0 {
		t.Fatalf("idle pressure = %v, want 0", p)
	}
	tk1, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	tk2, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	if p := c.Pressure(); p < 0.45 || p > 0.55 {
		t.Fatalf("saturated-no-queue pressure = %v, want ~0.5", p)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := c.Admit(context.Background(), TierInteractive, time.Time{})
			if err == nil {
				c.Release(tk, false)
			}
		}()
	}
	waitQueued(t, c, 2)
	if p := c.Pressure(); p < 0.99 {
		t.Fatalf("saturated-full-queue pressure = %v, want ~1", p)
	}
	c.Release(tk1, false)
	c.Release(tk2, false)
	wg.Wait()
}

func TestControllerShedPressureWithoutQueue(t *testing.T) {
	c := NewController(Config{Ceiling: 1, QueueCap: -1})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)
	for i := 0; i < 30; i++ {
		c.Admit(context.Background(), TierInteractive, time.Time{}) //nolint:errcheck
	}
	if p := c.Pressure(); p < 0.9 {
		t.Fatalf("pressure = %v after a shed storm, want ~1", p)
	}
}

func TestControllerOnShedHook(t *testing.T) {
	var hooked atomic.Uint64
	c := NewController(Config{Ceiling: 1, QueueCap: -1,
		OnShed: func(Tier, Reason) { hooked.Add(1) }})
	hold, _ := c.Admit(context.Background(), TierInteractive, time.Time{})
	defer c.Release(hold, false)
	c.Admit(context.Background(), TierBatch, time.Time{}) //nolint:errcheck
	c.RecordShed(TierRank, ReasonBrownout)
	if got := hooked.Load(); got != 2 {
		t.Fatalf("hook fired %d times, want 2", got)
	}
	if got := c.ShedCount(TierRank, ReasonBrownout); got != 1 {
		t.Fatalf("brownout shed count = %d, want 1", got)
	}
}

// TestControllerHammer drives concurrent admits/releases under -race
// and asserts the in-flight accounting never corrupts.
func TestControllerHammer(t *testing.T) {
	c := NewController(Config{Ceiling: 8, QueueCap: 32})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tier := Tier(i % numTiers)
				var dl time.Time
				if i%3 == 0 {
					dl = time.Now().Add(time.Duration(i%7) * time.Millisecond)
				}
				tk, err := c.Admit(context.Background(), tier, dl)
				if err != nil {
					continue
				}
				if i%5 == 0 {
					time.Sleep(time.Microsecond)
				}
				c.Release(tk, i%11 == 0)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked state after hammer: %+v", st)
	}
	if st.Limit < 1 || st.Limit > 8 {
		t.Fatalf("limit %d escaped [floor, ceiling]", st.Limit)
	}
}
