// Package overload is the serving tier's adaptive overload-control
// subsystem: a gradient/AIMD concurrency limiter (Limiter), a
// deadline-aware priority admission queue wrapped around it
// (Controller), and a brownout ladder (Ladder) that converts the
// controller's pressure signal into graceful-degradation levels.
//
// The design replaces a static admission pool (a fixed MaxInFlight
// semaphore with instant 429s) with three cooperating pieces:
//
//   - The Limiter learns how much concurrency the machine actually
//     sustains: it tracks a short- and a long-window latency EWMA,
//     grows the limit additively while saturated and healthy, and
//     backs off multiplicatively when the short window inflates past
//     the long one or completions start missing their deadlines. The
//     old static MaxInFlight survives as the ceiling.
//
//   - The Controller fronts the limiter with a small priority queue.
//     Requests carry a Tier (interactive > batch > rank > background);
//     a request whose propagated deadline cannot be met by the queue's
//     current service-rate estimate is shed at enqueue time (no doomed
//     work is admitted), and queued requests are CoDel-style expired
//     the moment their deadline passes.
//
//   - The Ladder maps smoothed pressure onto brownout levels L0..L4
//     with per-level entry/exit thresholds and dwell-time hysteresis,
//     so the serving layer can degrade in deliberate steps (widen the
//     batch window, serve stale cache generations, shrink rank-k,
//     fall back to the popularity prior, shed non-interactive traffic)
//     instead of collapsing all at once.
//
// The package is transport-agnostic: it never imports net/http. The
// serving layer parses the X-Cold-Priority / X-Cold-Deadline-Ms
// headers and calls Admit/Release; the cluster router forwards them.
package overload

import "strconv"

// Header names of the cross-tier overload contract. The router stamps
// both on forwarded requests; coldserve reads them at admission.
const (
	// PriorityHeader carries the request's Tier name ("interactive",
	// "batch", "rank", "background"). Absent → the route's default.
	PriorityHeader = "X-Cold-Priority"
	// DeadlineHeader carries the milliseconds REMAINING until the
	// client-side deadline at send time (set by the cluster router from
	// its request context). A value <= 0 means the request is already
	// dead on arrival.
	DeadlineHeader = "X-Cold-Deadline-Ms"
)

// Tier is a request priority class. Lower values are more important:
// under pressure the controller grants slots to the lowest Tier first
// and sheds the highest first.
type Tier int

const (
	// TierInteractive is a user-facing single prediction (the default
	// for /v1/predict/* and /v1/topics).
	TierInteractive Tier = iota
	// TierBatch is offline-ish bulk scoring (/v1/score/batch).
	TierBatch
	// TierRank is precomputed-ranking reads (/v1/rank/{user}).
	TierRank
	// TierBackground is maintenance traffic: ingest fold-in, cache
	// warming, backfills. First to brown out, last to get a slot.
	TierBackground

	numTiers = int(TierBackground) + 1
)

var tierNames = [numTiers]string{"interactive", "batch", "rank", "background"}

func (t Tier) String() string {
	if t < 0 || int(t) >= numTiers {
		return "tier(" + strconv.Itoa(int(t)) + ")"
	}
	return tierNames[t]
}

// ParseTier maps a wire name to its Tier. Unknown names return false;
// callers fall back to the route default rather than erroring, so a
// typo'd client header degrades to normal service, never a 400.
func ParseTier(s string) (Tier, bool) {
	for i, name := range tierNames {
		if s == name {
			return Tier(i), true
		}
	}
	return 0, false
}

// Tiers lists every tier in priority order, for metric registration
// and table rendering.
func Tiers() []Tier {
	return []Tier{TierInteractive, TierBatch, TierRank, TierBackground}
}

// Reason classifies a shed decision; these are the label values of
// cold_serve_shed_total{reason=...} and the keys of the /v1/stats
// shed-by-reason map.
type Reason string

const (
	// ReasonQueueFull: the limit was reached and the wait queue was at
	// capacity (or queuing is disabled).
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadlineUnmeetable: the queue's service-rate estimate says
	// the request's deadline would pass before a slot could be granted,
	// so it was refused at enqueue instead of queued to die.
	ReasonDeadlineUnmeetable Reason = "deadline_unmeetable"
	// ReasonExpiredInQueue: the request was queued with headroom but
	// its deadline passed before a slot freed up.
	ReasonExpiredInQueue Reason = "expired_in_queue"
	// ReasonBrownout: the brownout ladder shed the request's tier
	// before admission (L3/L4 policy, recorded by the serving layer).
	ReasonBrownout Reason = "brownout"
)

// Reasons lists every shed reason, for metric registration.
func Reasons() []Reason {
	return []Reason{ReasonQueueFull, ReasonDeadlineUnmeetable, ReasonExpiredInQueue, ReasonBrownout}
}
