package overload

import (
	"sync"
	"time"
)

// MaxLevel is the top of the brownout ladder (L4: shed all
// non-interactive traffic).
const MaxLevel = 4

// LadderConfig tunes the brownout ladder. Zero values get the defaults
// documented per field.
type LadderConfig struct {
	// Enter[i] is the pressure at or above which the ladder steps up
	// INTO level i+1 (Enter[0] → L1 … Enter[3] → L4). Zero →
	// {0.55, 0.70, 0.85, 0.95}.
	Enter [MaxLevel]float64
	// Exit[i] is the pressure at or below which the ladder steps down
	// OUT of level i+1. Zero → {0.40, 0.55, 0.70, 0.80}. Each exit
	// sits well under its entry so the level doesn't flap across a
	// noisy boundary.
	Exit [MaxLevel]float64
	// Hold is the minimum dwell time at a level before a step down
	// (there is no up-hold: overload reaction must be immediate).
	// 0 → 2s.
	Hold time.Duration
	// Now is the clock, injectable for tests; nil → time.Now.
	Now func() time.Time
}

// DefaultEnter / DefaultExit are the stock thresholds, exported so the
// docs, tests and DESIGN.md tables share one source of truth.
var (
	DefaultEnter = [MaxLevel]float64{0.55, 0.70, 0.85, 0.95}
	DefaultExit  = [MaxLevel]float64{0.40, 0.55, 0.70, 0.80}
)

// Ladder converts the controller's pressure signal into a brownout
// level L0..L4 with hysteresis: it steps UP one level per observation
// whenever pressure reaches the next entry threshold (so a saturating
// burst climbs quickly but never skips the intermediate degradations),
// and steps DOWN one level only after pressure has fallen to the
// current level's exit threshold AND the level has been held for the
// dwell time — recovering from a deep brownout is deliberately gradual,
// which also makes the level monotone non-increasing once load drops.
//
// Ladder is safe for concurrent use.
type Ladder struct {
	cfg LadderConfig
	now func() time.Time

	mu       sync.Mutex
	level    int
	lastStep time.Time
}

// NewLadder builds a ladder at L0.
func NewLadder(cfg LadderConfig) *Ladder {
	if cfg.Enter == ([MaxLevel]float64{}) {
		cfg.Enter = DefaultEnter
	}
	if cfg.Exit == ([MaxLevel]float64{}) {
		cfg.Exit = DefaultExit
	}
	if cfg.Hold <= 0 {
		cfg.Hold = 2 * time.Second
	}
	l := &Ladder{cfg: cfg, now: cfg.Now}
	if l.now == nil {
		l.now = time.Now
	}
	return l
}

// Observe feeds one pressure sample and returns the (possibly stepped)
// level. Call it wherever pressure is naturally sampled — the serving
// layer observes on every admission attempt, release and health probe,
// so the ladder keeps stepping down under trailing light traffic.
func (l *Ladder) Observe(pressure float64) int {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.level < MaxLevel && pressure >= l.cfg.Enter[l.level]:
		l.level++
		l.lastStep = now
	case l.level > 0 && pressure <= l.cfg.Exit[l.level-1] &&
		now.Sub(l.lastStep) >= l.cfg.Hold:
		l.level--
		l.lastStep = now
	}
	return l.level
}

// Level reads the current level without feeding a sample.
func (l *Ladder) Level() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// Force pins the ladder to a level immediately, resetting the dwell
// clock. It is the operator/test override: a forced level still decays
// back down through Observe once pressure allows, one Hold per step.
func (l *Ladder) Force(level int) {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	l.mu.Lock()
	l.level = level
	l.lastStep = l.now()
	l.mu.Unlock()
}
