package corpus

import (
	"testing"
)

func seedBuilder() *Builder {
	b := NewBuilder()
	b.TimeSlices = 4
	// alice posts twice, bob once, carol once (to be filtered later).
	b.AddPost("alice", 1000, "go databases are fast and fast")
	b.AddPost("alice", 2000, "diffusion models spread information")
	b.AddPost("bob", 3000, "databases and diffusion")
	b.AddPost("carol", 4000, "lonely post")
	b.AddLink("alice", "bob")
	b.AddLink("bob", "alice")
	b.AddLink("alice", "alice") // self-loop must be dropped
	return b
}

func TestBuilderBasic(t *testing.T) {
	b := seedBuilder()
	data, names, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if data.U != 3 {
		t.Fatalf("users %d, want 3", data.U)
	}
	if len(names) != 3 || names[0] != "alice" {
		t.Fatalf("names %v", names)
	}
	if len(data.Posts) != 4 {
		t.Fatalf("posts %d", len(data.Posts))
	}
	if len(data.Links) != 2 {
		t.Fatalf("links %d (self-loop not dropped?)", len(data.Links))
	}
	if data.T != 4 {
		t.Fatalf("slices %d", data.T)
	}
	// Time discretisation: earliest post in slice 0, latest in slice 3.
	if data.Posts[0].Time != 0 {
		t.Fatalf("first post slice %d", data.Posts[0].Time)
	}
	if data.Posts[3].Time != 3 {
		t.Fatalf("last post slice %d", data.Posts[3].Time)
	}
	// Stop word "and" must not be in the vocabulary.
	if _, ok := data.Vocab.ID("and"); ok {
		t.Fatal("stop word survived")
	}
	// Repeated word keeps multiplicity.
	if data.Posts[0].Words.Len() != 4 { // go databases fast fast
		t.Fatalf("post 0 token count %d", data.Posts[0].Words.Len())
	}
}

func TestBuilderMinPostsFilter(t *testing.T) {
	b := seedBuilder()
	b.MinPostsPerUser = 2
	data, names, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if data.U != 1 || names[0] != "alice" {
		t.Fatalf("filter kept %v", names)
	}
	// Links touching dropped users vanish.
	if len(data.Links) != 0 {
		t.Fatalf("links %d", len(data.Links))
	}
}

func TestBuilderVocabPruning(t *testing.T) {
	b := seedBuilder()
	b.MinWordCount = 2
	data, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// "fast" (2x), "databases" (2x) and "diffusion" (2x) survive;
	// "lonely" does not.
	if _, ok := data.Vocab.ID("fast"); !ok {
		t.Fatal("frequent word pruned")
	}
	if _, ok := data.Vocab.ID("lonely"); ok {
		t.Fatal("rare word survived")
	}
	// carol's post became empty and must be dropped.
	for _, p := range data.Posts {
		if p.Words.Len() == 0 {
			t.Fatal("empty post survived")
		}
	}
}

func TestBuilderRetweets(t *testing.T) {
	b := seedBuilder()
	post := b.AddPost("alice", 2500, "viral databases content")
	if err := b.AddRetweet(post, []string{"bob"}, []string{"carol"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRetweet(99, nil, nil); err == nil {
		t.Fatal("unknown post accepted")
	}
	data, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Retweets) != 1 {
		t.Fatalf("retweets %d", len(data.Retweets))
	}
	rt := data.Retweets[0]
	if data.Posts[rt.Post].Words.Len() == 0 {
		t.Fatal("retweet points at empty post")
	}
	if len(rt.Retweeters) != 1 || len(rt.Ignorers) != 1 {
		t.Fatalf("retweet classes %d/%d", len(rt.Retweeters), len(rt.Ignorers))
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty builder accepted")
	}
	b := NewBuilder()
	b.AddPost("a", 1, "hello world")
	b.TimeSlices = 0
	if _, _, err := b.Build(); err == nil {
		t.Fatal("zero slices accepted")
	}
	b2 := NewBuilder()
	b2.AddPost("a", 1, "hello world")
	b2.MinPostsPerUser = 5
	if _, _, err := b2.Build(); err == nil {
		t.Fatal("all-users-removed accepted")
	}
	b3 := NewBuilder()
	b3.AddPost("a", 1, "the and of") // stop words only
	if _, _, err := b3.Build(); err == nil {
		t.Fatal("empty vocabulary accepted")
	}
}

func TestBuilderDeterministicVocab(t *testing.T) {
	build := func() *Dataset {
		b := seedBuilder()
		d, _, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, c := build(), build()
	if a.V != c.V {
		t.Fatal("vocab size differs")
	}
	for i := 0; i < a.V; i++ {
		if a.Vocab.Word(i) != c.Vocab.Word(i) {
			t.Fatal("vocabulary ids not deterministic")
		}
	}
}

func TestBuilderSingleTimestamp(t *testing.T) {
	b := NewBuilder()
	b.TimeSlices = 8
	b.AddPost("a", 1234, "same moment words")
	b.AddPost("b", 1234, "another same moment")
	data, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range data.Posts {
		if p.Time != 0 {
			t.Fatalf("zero-span timestamps should land in slice 0, got %d", p.Time)
		}
	}
}

func TestBuilderStemming(t *testing.T) {
	b := NewBuilder()
	b.Stemming = true
	b.TimeSlices = 2
	b.AddPost("a", 1, "diffusing diffused connection connected")
	b.AddPost("b", 2, "running runs")
	data, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Inflected variants collapse: "diffusing"/"diffused" share a stem.
	if _, ok := data.Vocab.ID("diffusing"); ok {
		t.Fatal("unstemmed token survived")
	}
	if _, ok := data.Vocab.ID("diffus"); !ok {
		t.Fatalf("stem missing; vocab: %v", data.Vocab.Words())
	}
	// First post has 4 tokens but only 2 distinct stems.
	if data.Posts[0].Words.Distinct() != 2 {
		t.Fatalf("distinct stems %d, want 2", data.Posts[0].Words.Distinct())
	}
}
