package corpus

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/cold-diffusion/cold/internal/graph"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/text"
)

// randomDataset builds an arbitrary valid dataset from a seed.
func randomDataset(seed uint64) *Dataset {
	r := rng.New(seed)
	u := 2 + r.Intn(10)
	tSlices := 1 + r.Intn(6)
	v := 2 + r.Intn(20)
	d := &Dataset{U: u, T: tSlices, V: v}
	nPosts := 1 + r.Intn(20)
	for i := 0; i < nPosts; i++ {
		length := r.Intn(6)
		tokens := make([]int, length)
		for l := range tokens {
			tokens[l] = r.Intn(v)
		}
		d.Posts = append(d.Posts, Post{
			User: r.Intn(u), Time: r.Intn(tSlices), Words: text.NewBagOfWords(tokens),
		})
	}
	nLinks := r.Intn(12)
	for i := 0; i < nLinks; i++ {
		a, b := r.Intn(u), r.Intn(u)
		if a != b {
			d.Links = append(d.Links, graph.Edge{From: a, To: b})
		}
	}
	return d
}

// Property: any randomly generated valid dataset survives a JSON round
// trip with identical structure.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		if err := d.Validate(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if got.U != d.U || got.T != d.T || got.V != d.V ||
			len(got.Posts) != len(d.Posts) || len(got.Links) != len(d.Links) {
			return false
		}
		for i := range d.Posts {
			if got.Posts[i].User != d.Posts[i].User ||
				got.Posts[i].Time != d.Posts[i].Time ||
				got.Posts[i].Words.Len() != d.Posts[i].Words.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every k-fold split partitions indices exactly (disjoint
// cover), for arbitrary datasets and k.
func TestCrossValidationPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		d := randomDataset(seed)
		r := rng.New(seed ^ 0xabcd)
		k := 2 + int(seed%4)
		splits, err := d.CrossValidation(r, k)
		if err != nil {
			return false
		}
		for _, s := range splits {
			if len(s.TrainPosts)+len(s.TestPosts) != len(d.Posts) {
				return false
			}
			if len(s.TrainLinks)+len(s.TestLinks) != len(d.Links) {
				return false
			}
			seen := map[int]bool{}
			for _, i := range s.TrainPosts {
				seen[i] = true
			}
			for _, i := range s.TestPosts {
				if seen[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Subset always yields a valid dataset whose retweets point at
// retained posts.
func TestSubsetValidityProperty(t *testing.T) {
	f := func(seed uint64, pFrac, lFrac uint8) bool {
		d := randomDataset(seed)
		// Attach retweets pointing at arbitrary posts.
		r := rng.New(seed + 1)
		for i := 0; i < 5 && len(d.Posts) > 0; i++ {
			post := r.Intn(len(d.Posts))
			d.Retweets = append(d.Retweets, Retweet{
				Publisher: d.Posts[post].User, Post: post,
				Retweeters: []int{r.Intn(d.U)},
			})
		}
		sub := d.Subset(int(pFrac)%(len(d.Posts)+1), int(lFrac)%(len(d.Links)+1))
		if err := sub.Validate(); err != nil {
			return false
		}
		for _, rt := range sub.Retweets {
			if rt.Post >= len(sub.Posts) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
