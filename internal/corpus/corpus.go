// Package corpus defines the dataset substrate shared by every model in
// the repository: users with time-stamped bag-of-words posts, the
// interaction network, and the retweet records used by the diffusion
// prediction task. It also provides validation, JSON round-tripping and
// the cross-validation splits the paper's evaluation protocol needs.
package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/cold-diffusion/cold/internal/checkpoint"
	"github.com/cold-diffusion/cold/internal/graph"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/text"
)

// Post is a single user post: a sparse bag of words with a discretised
// time stamp (slice index in [0, T)).
type Post struct {
	User  int             `json:"user"`
	Time  int             `json:"time"`
	Words text.BagOfWords `json:"words"`
}

// Retweet records the diffusion outcome of one post: the author, the post
// index, the followers who retweeted it, and the followers who saw it but
// did not (the negative class of the averaged-AUC evaluation, §6.3).
type Retweet struct {
	Publisher  int   `json:"publisher"`
	Post       int   `json:"post"`
	Retweeters []int `json:"retweeters"`
	Ignorers   []int `json:"ignorers"`
}

// Dataset bundles the three observation modalities the COLD model is
// generative over — text, time and network — plus the retweet records.
type Dataset struct {
	U int // number of users
	T int // number of time slices
	V int // vocabulary size

	Posts    []Post
	Links    []graph.Edge
	Retweets []Retweet

	// Vocab optionally maps word ids back to strings for display; the
	// models operate on ids only.
	Vocab *text.Vocabulary `json:"-"`
}

// Validate checks that all indices are in range and the dataset is
// internally consistent.
func (d *Dataset) Validate() error {
	if d.U < 0 || d.T <= 0 || d.V <= 0 {
		return fmt.Errorf("corpus: invalid dimensions U=%d T=%d V=%d", d.U, d.T, d.V)
	}
	for i, p := range d.Posts {
		if p.User < 0 || p.User >= d.U {
			return fmt.Errorf("corpus: post %d has user %d out of range", i, p.User)
		}
		if p.Time < 0 || p.Time >= d.T {
			return fmt.Errorf("corpus: post %d has time %d out of range [0,%d)", i, p.Time, d.T)
		}
		for _, w := range p.Words.IDs {
			if w < 0 || w >= d.V {
				return fmt.Errorf("corpus: post %d has word id %d out of range", i, w)
			}
		}
	}
	for i, e := range d.Links {
		if e.From < 0 || e.From >= d.U || e.To < 0 || e.To >= d.U {
			return fmt.Errorf("corpus: link %d (%d,%d) out of range", i, e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("corpus: link %d is a self-loop", i)
		}
	}
	for i, rt := range d.Retweets {
		if rt.Publisher < 0 || rt.Publisher >= d.U {
			return fmt.Errorf("corpus: retweet %d publisher out of range", i)
		}
		if rt.Post < 0 || rt.Post >= len(d.Posts) {
			return fmt.Errorf("corpus: retweet %d post index out of range", i)
		}
		for _, u := range rt.Retweeters {
			if u < 0 || u >= d.U {
				return fmt.Errorf("corpus: retweet %d retweeter out of range", i)
			}
		}
		for _, u := range rt.Ignorers {
			if u < 0 || u >= d.U {
				return fmt.Errorf("corpus: retweet %d ignorer out of range", i)
			}
		}
	}
	return nil
}

// Graph materialises the link set as a directed graph.
func (d *Dataset) Graph() (*graph.Directed, error) {
	g := graph.NewDirected(d.U)
	for _, e := range d.Links {
		if _, err := g.AddEdge(e.From, e.To); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// PostsByUser returns, for each user, the indices of their posts.
func (d *Dataset) PostsByUser() [][]int {
	out := make([][]int, d.U)
	for i, p := range d.Posts {
		out[p.User] = append(out[p.User], i)
	}
	return out
}

// WordCount returns the total number of word tokens across all posts.
func (d *Dataset) WordCount() int {
	total := 0
	for _, p := range d.Posts {
		total += p.Words.Len()
	}
	return total
}

// Stats summarises the dataset the way the paper reports its corpora.
type Stats struct {
	Users, TimeSlices, Vocab int
	Posts, Links, Retweets   int
	Words                    int
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	return Stats{
		Users:      d.U,
		TimeSlices: d.T,
		Vocab:      d.V,
		Posts:      len(d.Posts),
		Links:      len(d.Links),
		Retweets:   len(d.Retweets),
		Words:      d.WordCount(),
	}
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("users=%d slices=%d vocab=%d posts=%d words=%d links=%d retweets=%d",
		s.Users, s.TimeSlices, s.Vocab, s.Posts, s.Words, s.Links, s.Retweets)
}

// WriteJSON serialises the dataset (without the display vocabulary).
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// ReadJSON deserialises a dataset written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveFile writes the dataset to path as JSON, atomically (tmp + rename)
// so a crash mid-write cannot leave a truncated dataset under the final
// name.
func (d *Dataset) SaveFile(path string) error {
	return checkpoint.AtomicWriteFile(path, d.WriteJSON)
}

// LoadFile reads a dataset from a JSON file.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}

// Subset returns a dataset containing only the first posts/links/retweets
// counts given (for the data-size scaling experiment, Fig 13a). Retweet
// records pointing past the retained posts are dropped.
func (d *Dataset) Subset(posts, links int) *Dataset {
	if posts > len(d.Posts) {
		posts = len(d.Posts)
	}
	if links > len(d.Links) {
		links = len(d.Links)
	}
	sub := &Dataset{
		U:     d.U,
		T:     d.T,
		V:     d.V,
		Posts: d.Posts[:posts],
		Links: d.Links[:links],
		Vocab: d.Vocab,
	}
	for _, rt := range d.Retweets {
		if rt.Post < posts {
			sub.Retweets = append(sub.Retweets, rt)
		}
	}
	return sub
}

// Split holds one cross-validation fold: index sets into the parent
// dataset's slices.
type Split struct {
	TrainPosts, TestPosts       []int
	TrainLinks, TestLinks       []int
	TrainRetweets, TestRetweets []int
}

// CrossValidation produces k folds over posts, links and retweet tuples,
// shuffled with r. Fold f uses partition f as test and the rest as train —
// the 5-fold protocol used throughout §6. k must be at least 2.
func (d *Dataset) CrossValidation(r *rng.RNG, k int) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("corpus: cross-validation needs k >= 2, got %d", k)
	}
	postFolds := foldIndices(r, len(d.Posts), k)
	linkFolds := foldIndices(r, len(d.Links), k)
	rtFolds := foldIndices(r, len(d.Retweets), k)
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		var s Split
		for g := 0; g < k; g++ {
			if g == f {
				s.TestPosts = append(s.TestPosts, postFolds[g]...)
				s.TestLinks = append(s.TestLinks, linkFolds[g]...)
				s.TestRetweets = append(s.TestRetweets, rtFolds[g]...)
			} else {
				s.TrainPosts = append(s.TrainPosts, postFolds[g]...)
				s.TrainLinks = append(s.TrainLinks, linkFolds[g]...)
				s.TrainRetweets = append(s.TrainRetweets, rtFolds[g]...)
			}
		}
		splits[f] = s
	}
	return splits, nil
}

func foldIndices(r *rng.RNG, n, k int) [][]int {
	perm := r.Perm(n)
	folds := make([][]int, k)
	for i, idx := range perm {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}

// TrainView materialises the training portion of a split as a dataset
// that shares post/link storage with the parent.
func (d *Dataset) TrainView(s Split) *Dataset {
	out := &Dataset{U: d.U, T: d.T, V: d.V, Vocab: d.Vocab}
	out.Posts = make([]Post, 0, len(s.TrainPosts))
	for _, i := range s.TrainPosts {
		out.Posts = append(out.Posts, d.Posts[i])
	}
	out.Links = make([]graph.Edge, 0, len(s.TrainLinks))
	for _, i := range s.TrainLinks {
		out.Links = append(out.Links, d.Links[i])
	}
	// Retweet tuples reference post indices in the parent; the prediction
	// evaluation reads post content from the parent dataset, so train
	// retweets are carried by index only.
	return out
}
