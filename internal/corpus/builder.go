package corpus

import (
	"fmt"
	"sort"

	"github.com/cold-diffusion/cold/internal/graph"
	"github.com/cold-diffusion/cold/internal/text"
)

// Builder assembles a Dataset from raw social records — string user
// names, free-text post bodies with unix time stamps, interaction pairs
// and retweet outcomes — applying the preprocessing the paper describes
// (§6.1): tokenisation with stop-word removal, dropping low-activity
// users, pruning rare vocabulary, and discretising the observed time
// span into equal slices.
type Builder struct {
	// TimeSlices is the number of slices T the time span is divided
	// into (the paper uses hours; default 24).
	TimeSlices int
	// MinPostsPerUser drops users with fewer posts (the paper removes
	// users with < 20 posts; default 1 keeps everyone with any post).
	MinPostsPerUser int
	// MinWordCount prunes vocabulary entries occurring fewer times
	// across the corpus (default 1 keeps everything).
	MinWordCount int
	// Tokenizer splits post bodies; defaults to text.NewTokenizer().
	Tokenizer *text.Tokenizer
	// Stemming applies the Porter stemmer to tokens, collapsing
	// inflected variants onto shared stems (off by default).
	Stemming bool

	users  map[string]int
	names  []string
	posts  []rawPost
	links  []rawLink
	spread []rawRetweet
}

type rawPost struct {
	user   int
	time   int64
	tokens []string
}

type rawLink struct{ from, to int }

type rawRetweet struct {
	publisher  int
	post       int // index into b.posts
	retweeters []int
	ignorers   []int
}

// NewBuilder returns a builder with the default preprocessing policy.
func NewBuilder() *Builder {
	return &Builder{
		TimeSlices:      24,
		MinPostsPerUser: 1,
		MinWordCount:    1,
		Tokenizer:       text.NewTokenizer(),
		users:           make(map[string]int),
	}
}

// intern returns the dense id of a user name, creating it on first use.
func (b *Builder) intern(user string) int {
	if id, ok := b.users[user]; ok {
		return id
	}
	id := len(b.names)
	b.users[user] = id
	b.names = append(b.names, user)
	return id
}

// AddPost records a post body; returns the post's index for later
// AddRetweet calls.
func (b *Builder) AddPost(user string, unixTime int64, body string) int {
	tokens := b.Tokenizer.Tokenize(body)
	if b.Stemming {
		tokens = text.StemTokens(tokens)
	}
	b.posts = append(b.posts, rawPost{
		user:   b.intern(user),
		time:   unixTime,
		tokens: tokens,
	})
	return len(b.posts) - 1
}

// AddLink records a directed interaction from -> to (e.g. "to retweeted
// from" per Definition 1).
func (b *Builder) AddLink(from, to string) {
	b.links = append(b.links, rawLink{b.intern(from), b.intern(to)})
}

// AddRetweet records a diffusion outcome for a post added earlier.
func (b *Builder) AddRetweet(post int, retweeters, ignorers []string) error {
	if post < 0 || post >= len(b.posts) {
		return fmt.Errorf("corpus: retweet references unknown post %d", post)
	}
	rt := rawRetweet{publisher: b.posts[post].user, post: post}
	for _, u := range retweeters {
		rt.retweeters = append(rt.retweeters, b.intern(u))
	}
	for _, u := range ignorers {
		rt.ignorers = append(rt.ignorers, b.intern(u))
	}
	b.spread = append(b.spread, rt)
	return nil
}

// UserName returns the original name of a built user id (valid after
// Build, using the mapping Build returns).
func (b *Builder) UserName(raw int) string { return b.names[raw] }

// KnownUser reports whether user was seen by an earlier AddPost or
// AddLink. Feeders use it to reject retweet records naming users with no
// prior activity instead of silently interning a phantom user that the
// low-activity filter would drop (taking the diffusion observation with
// it) or, worse, keeping as an all-zero row.
func (b *Builder) KnownUser(user string) bool {
	_, ok := b.users[user]
	return ok
}

// Build applies the filters and produces the dataset plus the mapping
// from kept dense user ids back to user names.
func (b *Builder) Build() (*Dataset, []string, error) {
	if len(b.posts) == 0 {
		return nil, nil, fmt.Errorf("corpus: no posts added")
	}
	if b.TimeSlices < 1 {
		return nil, nil, fmt.Errorf("corpus: TimeSlices must be >= 1")
	}

	// 1. Drop low-activity users.
	postCount := make([]int, len(b.names))
	for _, p := range b.posts {
		postCount[p.user]++
	}
	keep := make([]int, len(b.names)) // old id -> new id or -1
	names := make([]string, 0, len(b.names))
	for old, c := range postCount {
		if c >= b.MinPostsPerUser {
			keep[old] = len(names)
			names = append(names, b.names[old])
		} else {
			keep[old] = -1
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("corpus: MinPostsPerUser=%d removed every user", b.MinPostsPerUser)
	}

	// 2. Count words over kept users' posts and build the pruned
	//    vocabulary.
	wordCount := make(map[string]int)
	for _, p := range b.posts {
		if keep[p.user] < 0 {
			continue
		}
		for _, w := range p.tokens {
			wordCount[w]++
		}
	}
	kept := make([]string, 0, len(wordCount))
	for w, c := range wordCount {
		if c >= b.MinWordCount {
			kept = append(kept, w)
		}
	}
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("corpus: vocabulary empty after pruning")
	}
	sort.Strings(kept) // deterministic ids
	vocab := text.NewVocabulary()
	for _, w := range kept {
		vocab.Add(w)
	}

	// 3. Time discretisation over the kept posts' span.
	var minT, maxT int64
	first := true
	for _, p := range b.posts {
		if keep[p.user] < 0 {
			continue
		}
		if first || p.time < minT {
			minT = p.time
		}
		if first || p.time > maxT {
			maxT = p.time
		}
		first = false
	}
	span := maxT - minT + 1
	slice := func(t int64) int {
		s := int((t - minT) * int64(b.TimeSlices) / span)
		if s >= b.TimeSlices {
			s = b.TimeSlices - 1
		}
		return s
	}

	// 4. Materialise posts (dropping those that became empty), tracking
	//    the old-post-index -> new-post-index mapping for retweets.
	data := &Dataset{U: len(names), T: b.TimeSlices, V: vocab.Size(), Vocab: vocab}
	postMap := make([]int, len(b.posts))
	for i := range postMap {
		postMap[i] = -1
	}
	for i, p := range b.posts {
		if keep[p.user] < 0 {
			continue
		}
		ids := make([]int, 0, len(p.tokens))
		for _, w := range p.tokens {
			if id, ok := vocab.ID(w); ok {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			continue
		}
		postMap[i] = len(data.Posts)
		data.Posts = append(data.Posts, Post{
			User:  keep[p.user],
			Time:  slice(p.time),
			Words: text.NewBagOfWords(ids),
		})
	}
	if len(data.Posts) == 0 {
		return nil, nil, fmt.Errorf("corpus: every post became empty after preprocessing")
	}

	// 5. Links between kept users, de-duplicated, no self-loops.
	g := graph.NewDirected(data.U)
	for _, l := range b.links {
		from, to := keep[l.from], keep[l.to]
		if from < 0 || to < 0 || from == to {
			continue
		}
		g.AddEdge(from, to)
	}
	data.Links = g.Edges()

	// 6. Retweet tuples whose post and publisher survived.
	for _, rt := range b.spread {
		newPost := postMap[rt.post]
		if newPost < 0 || keep[rt.publisher] < 0 {
			continue
		}
		out := Retweet{Publisher: keep[rt.publisher], Post: newPost}
		for _, u := range rt.retweeters {
			if keep[u] >= 0 {
				out.Retweeters = append(out.Retweeters, keep[u])
			}
		}
		for _, u := range rt.ignorers {
			if keep[u] >= 0 {
				out.Ignorers = append(out.Ignorers, keep[u])
			}
		}
		if len(out.Retweeters)+len(out.Ignorers) > 0 {
			data.Retweets = append(data.Retweets, out)
		}
	}

	if err := data.Validate(); err != nil {
		return nil, nil, fmt.Errorf("corpus: built invalid dataset: %w", err)
	}
	return data, names, nil
}
