package corpus

import (
	"bytes"
	"testing"

	"github.com/cold-diffusion/cold/internal/graph"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/text"
)

func tinyDataset() *Dataset {
	return &Dataset{
		U: 3, T: 4, V: 5,
		Posts: []Post{
			{User: 0, Time: 0, Words: text.NewBagOfWords([]int{0, 1, 1})},
			{User: 1, Time: 2, Words: text.NewBagOfWords([]int{2})},
			{User: 2, Time: 3, Words: text.NewBagOfWords([]int{3, 4})},
			{User: 0, Time: 1, Words: text.NewBagOfWords([]int{0})},
		},
		Links: []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}},
		Retweets: []Retweet{
			{Publisher: 0, Post: 0, Retweeters: []int{1}, Ignorers: []int{2}},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Dataset)
	}{
		{"bad user", func(d *Dataset) { d.Posts[0].User = 9 }},
		{"bad time", func(d *Dataset) { d.Posts[0].Time = -1 }},
		{"bad word", func(d *Dataset) { d.Posts[0].Words.IDs[0] = 99 }},
		{"bad link", func(d *Dataset) { d.Links[0].To = 77 }},
		{"self-loop link", func(d *Dataset) { d.Links[0].To = d.Links[0].From }},
		{"bad retweet post", func(d *Dataset) { d.Retweets[0].Post = 50 }},
		{"bad retweeter", func(d *Dataset) { d.Retweets[0].Retweeters[0] = -2 }},
		{"zero T", func(d *Dataset) { d.T = 0 }},
	}
	for _, tc := range cases {
		d := tinyDataset()
		tc.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestGraphAndPostsByUser(t *testing.T) {
	d := tinyDataset()
	g, err := d.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || !g.HasEdge(0, 1) {
		t.Fatal("graph materialisation broken")
	}
	byUser := d.PostsByUser()
	if len(byUser[0]) != 2 || byUser[0][0] != 0 || byUser[0][1] != 3 {
		t.Fatalf("PostsByUser[0] = %v", byUser[0])
	}
	if len(byUser[1]) != 1 || len(byUser[2]) != 1 {
		t.Fatal("PostsByUser wrong")
	}
}

func TestStats(t *testing.T) {
	s := tinyDataset().Stats()
	if s.Posts != 4 || s.Words != 7 || s.Links != 2 || s.Retweets != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.U != d.U || got.T != d.T || got.V != d.V {
		t.Fatal("dimension mismatch after round trip")
	}
	if len(got.Posts) != len(d.Posts) || len(got.Links) != len(d.Links) {
		t.Fatal("content mismatch after round trip")
	}
	if got.Posts[0].Words.Len() != d.Posts[0].Words.Len() {
		t.Fatal("bag mismatch after round trip")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	bad := bytes.NewBufferString(`{"U":1,"T":0,"V":1,"Posts":null,"Links":null,"Retweets":null}`)
	if _, err := ReadJSON(bad); err == nil {
		t.Fatal("invalid dataset accepted")
	}
	garbage := bytes.NewBufferString(`{nope`)
	if _, err := ReadJSON(garbage); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSubset(t *testing.T) {
	d := tinyDataset()
	sub := d.Subset(2, 1)
	if len(sub.Posts) != 2 || len(sub.Links) != 1 {
		t.Fatalf("subset sizes %d/%d", len(sub.Posts), len(sub.Links))
	}
	// Retweet pointing at post 0 survives; anything else would be dropped.
	if len(sub.Retweets) != 1 {
		t.Fatalf("retweets %d", len(sub.Retweets))
	}
	// Oversized request clamps.
	all := d.Subset(100, 100)
	if len(all.Posts) != 4 || len(all.Links) != 2 {
		t.Fatal("clamping broken")
	}
}

func TestCrossValidation(t *testing.T) {
	d := tinyDataset()
	// Grow the dataset so folds are non-trivial.
	for i := 0; i < 46; i++ {
		d.Posts = append(d.Posts, Post{User: i % 3, Time: i % 4, Words: text.NewBagOfWords([]int{i % 5})})
	}
	r := rng.New(7)
	splits, err := d.CrossValidation(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 5 {
		t.Fatalf("%d splits", len(splits))
	}
	seen := make(map[int]int)
	for _, s := range splits {
		if len(s.TestPosts)+len(s.TrainPosts) != len(d.Posts) {
			t.Fatal("fold does not cover all posts")
		}
		for _, i := range s.TestPosts {
			seen[i]++
		}
		// Train and test are disjoint.
		inTest := map[int]bool{}
		for _, i := range s.TestPosts {
			inTest[i] = true
		}
		for _, i := range s.TrainPosts {
			if inTest[i] {
				t.Fatal("train/test overlap")
			}
		}
	}
	// Every post is tested exactly once across folds.
	if len(seen) != len(d.Posts) {
		t.Fatalf("coverage %d of %d", len(seen), len(d.Posts))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("post %d tested %d times", i, c)
		}
	}
}

func TestCrossValidationRejectsBadK(t *testing.T) {
	for _, k := range []int{1, 0, -3} {
		if _, err := tinyDataset().CrossValidation(rng.New(1), k); err == nil {
			t.Fatalf("k=%d did not error", k)
		}
	}
}

func TestTrainView(t *testing.T) {
	d := tinyDataset()
	s := Split{TrainPosts: []int{0, 2}, TrainLinks: []int{1}}
	view := d.TrainView(s)
	if len(view.Posts) != 2 || len(view.Links) != 1 {
		t.Fatal("train view sizes wrong")
	}
	if view.Posts[1].User != 2 {
		t.Fatal("train view content wrong")
	}
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}
}
