package corpus

import (
	"bytes"
	"testing"
)

// FuzzReadJSON checks that arbitrary bytes never panic the dataset
// decoder and that anything it accepts validates.
func FuzzReadJSON(f *testing.F) {
	good := tinyDataset()
	var buf bytes.Buffer
	if err := good.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"U":1,"T":1,"V":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"U":-5,"T":0,"V":0,"Posts":[{"user":99}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid dataset: %v", err)
		}
	})
}
