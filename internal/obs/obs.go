// Package obs is the repository's zero-dependency observability layer:
// a metrics registry (atomic counters, gauges and fixed-bucket
// histograms) with Prometheus text-format exposition and an expvar
// bridge, plus structured-logging helpers on log/slog and a pprof debug
// mux. Every layer of the system — training (cold_train_*), the GAS
// engine (cold_gas_*), serving (cold_serve_*) and prediction
// (cold_predict_*) — registers its instruments here so one /metrics
// scrape covers the whole process.
//
// Design constraints, in order:
//
//   - Hot-path writes are lock-free: a Counter.Add is one atomic add, a
//     Histogram.Observe is a linear scan over ~14 bucket bounds plus
//     three atomic ops. No maps, no allocation, no locks after
//     registration.
//
//   - Instrument pointers are nil-safe: calling Add/Set/Observe on a
//     nil *Counter/*Gauge/*Histogram is a no-op, so instrumented code
//     paths need no "is observability configured?" branches.
//
//   - Every instrument knows whether it was ever updated (Touched), so
//     a smoke test can fail when an instrument is registered but never
//     exercised — dead metrics are lies waiting to be dashboarded.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout in seconds,
// spanning sub-millisecond cache hits to multi-second training sweeps.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// instrument is the exposition surface shared by all metric kinds.
type instrument interface {
	meta() *metricMeta
	// expose appends the sample lines (no HELP/TYPE header) to b.
	expose(b *strings.Builder)
	// value returns a scalar for the expvar bridge (histograms report
	// their observation count).
	value() float64
}

// metricMeta is the registration-time identity of one instrument.
type metricMeta struct {
	name    string // metric family name, e.g. cold_serve_requests_total
	labels  string // rendered label pairs, e.g. `route="retweet"`, or ""
	help    string
	kind    string // "counter" | "gauge" | "histogram"
	touched atomic.Bool
}

func (m *metricMeta) meta() *metricMeta { return m }

// series is the full sample name: name or name{labels}.
func (m *metricMeta) series() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// Counter is a monotonically increasing uint64. The zero value is ready
// to use but unregistered; nil receivers are no-ops.
type Counter struct {
	metricMeta
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
	c.touched.Store(true)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) expose(b *strings.Builder) {
	b.WriteString(c.series())
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

func (c *Counter) value() float64 { return float64(c.v.Load()) }

// Gauge is a float64 that can go up and down. Nil receivers are no-ops.
type Gauge struct {
	metricMeta
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.touched.Store(true)
}

// Add increments the gauge by delta (CAS loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			break
		}
	}
	g.touched.Store(true)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expose(b *strings.Builder) {
	b.WriteString(g.series())
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

func (g *Gauge) value() float64 { return g.Value() }

// Histogram is a fixed-bucket histogram. Buckets hold per-bucket (not
// cumulative) observation counts; exposition emits the cumulative
// Prometheus form. Nil receivers are no-ops.
type Histogram struct {
	metricMeta
	bounds  []float64 // upper bounds, ascending; implicit +Inf last
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.touched.Store(true)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) expose(b *strings.Builder) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		h.bucketLine(b, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	h.bucketLine(b, "+Inf", cum)
	b.WriteString(h.name)
	b.WriteString("_sum")
	if h.labels != "" {
		b.WriteString("{" + h.labels + "}")
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(h.name)
	b.WriteString("_count")
	if h.labels != "" {
		b.WriteString("{" + h.labels + "}")
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

func (h *Histogram) bucketLine(b *strings.Builder, le string, cum uint64) {
	b.WriteString(h.name)
	b.WriteString("_bucket{")
	if h.labels != "" {
		b.WriteString(h.labels)
		b.WriteByte(',')
	}
	b.WriteString(`le="`)
	b.WriteString(le)
	b.WriteString(`"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

func (h *Histogram) value() float64 { return float64(h.count.Load()) }

// Registry owns a set of instruments and renders them. Registration
// takes a lock; instrument updates never do. The zero value is not
// usable — call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	in     []instrument
	series map[string]bool // duplicate-registration guard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]bool)}
}

func (r *Registry) register(i instrument) {
	m := i.meta()
	if err := checkName(m.name); err != nil {
		panic(fmt.Sprintf("obs: %v", err))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.series()
	if r.series[key] {
		panic(fmt.Sprintf("obs: duplicate registration of %s", key))
	}
	r.series[key] = true
	r.in = append(r.in, i)
}

// checkName enforces the Prometheus metric-name grammar.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL registers a counter with constant labels, rendered exactly
// as given (e.g. `route="retweet"`).
func (r *Registry) CounterL(name, labels, help string) *Counter {
	c := &Counter{metricMeta: metricMeta{name: name, labels: labels, help: help, kind: "counter"}}
	r.register(c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, "", help)
}

// GaugeL registers a gauge with constant labels.
func (r *Registry) GaugeL(name, labels, help string) *Gauge {
	g := &Gauge{metricMeta: metricMeta{name: name, labels: labels, help: help, kind: "gauge"}}
	r.register(g)
	return g
}

// Histogram registers a histogram with the given ascending upper
// bounds (nil → DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, "", help, bounds)
}

// HistogramL registers a histogram with constant labels.
func (r *Registry) HistogramL(name, labels, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		metricMeta: metricMeta{name: name, labels: labels, help: help, kind: "histogram"},
		bounds:     append([]float64(nil), bounds...),
		counts:     make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Instruments registered under the
// same family name (label variants) share one HELP/TYPE header, emitted
// at the family's first appearance in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	instruments := append([]instrument(nil), r.in...)
	r.mu.Unlock()

	var b strings.Builder
	seen := make(map[string]bool)
	for _, i := range instruments {
		m := i.meta()
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				b.WriteString("# HELP " + m.name + " " + escapeHelp(m.help) + "\n")
			}
			b.WriteString("# TYPE " + m.name + " " + m.kind + "\n")
		}
		i.expose(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Untouched returns the series names of instruments that were
// registered but never updated, sorted. A metrics smoke test treats a
// non-empty result as failure: an instrument nobody fires is either
// dead code or a broken wire.
func (r *Registry) Untouched() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, i := range r.in {
		if m := i.meta(); !m.touched.Load() {
			out = append(out, m.series())
		}
	}
	sort.Strings(out)
	return out
}

// ExpvarVar returns an expvar.Var rendering every instrument as a flat
// JSON object of series name → scalar value (histograms report their
// observation count). Publish it once per process:
//
//	expvar.Publish("cold", reg.ExpvarVar())
//
// after which the standard /debug/vars endpoint includes the registry.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		out := make(map[string]float64, len(r.in))
		for _, i := range r.in {
			out[i.meta().series()] = i.value()
		}
		return out
	})
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with integral values kept integral.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
