package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger for the binaries: format is
// "text" (human-readable key=value, the default) or "json" (one JSON
// object per line, for log shippers). Unknown formats fall back to
// text rather than failing a long training job over a typo.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting
// to Info on anything unrecognised.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Printf adapts a structured logger to the printf-style Logf hooks the
// serving and manager configs expose, so one slog pipeline carries
// every lifecycle line.
func Printf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
