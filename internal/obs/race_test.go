package obs

import (
	"io"
	"math"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers every instrument kind from many
// goroutines while a reader renders the exposition concurrently. Run
// under -race (the CI race matrix includes this package); correctness
// of the final totals also proves no increments were lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cold_test_conc_total", "")
	g := r.Gauge("cold_test_conc_gauge", "")
	h := r.Histogram("cold_test_conc_seconds", "", []float64{0.25, 0.5, 0.75})

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
				if i%64 == 0 { // concurrent scrapes while writes are in flight
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if c.Value() != total {
		t.Errorf("counter = %d, want %d (lost increments)", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge = %v, want %d (lost CAS adds)", g.Value(), total)
	}
	if h.Count() != total {
		t.Errorf("histogram count = %d, want %d", h.Count(), total)
	}
	// Each worker observes 0, .25, .5, .75 cyclically: sum is exact in
	// binary floating point, so equality is safe.
	wantSum := float64(total) / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), wantSum)
	}
}
