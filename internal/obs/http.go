package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugMux returns the operator debug surface for a -debug-addr
// listener: net/http/pprof under /debug/pprof/, expvar under
// /debug/vars (whatever the process has Published), and the registry
// under /metrics. It deliberately avoids http.DefaultServeMux so the
// profiling endpoints never leak onto the public serving listener.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}
