package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the exact exposition text for one
// of every instrument kind, including a labelled family sharing one
// HELP/TYPE header. Scrapers parse this byte-for-byte; format drift is
// a breaking change and must show up as a diff here.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cold_test_events_total", "Total events.")
	ra := r.CounterL("cold_test_requests_total", `route="a"`, "Requests by route.")
	rb := r.CounterL("cold_test_requests_total", `route="b"`, "Requests by route.")
	g := r.Gauge("cold_test_temperature", "Current temperature.")
	h := r.Histogram("cold_test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})

	c.Add(3)
	ra.Inc()
	rb.Add(2)
	g.Set(36.5)
	h.Observe(0.005) // ≤ 0.01
	h.Observe(0.05)  // ≤ 0.1
	h.Observe(0.05)
	h.Observe(2) // +Inf bucket

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cold_test_events_total Total events.
# TYPE cold_test_events_total counter
cold_test_events_total 3
# HELP cold_test_requests_total Requests by route.
# TYPE cold_test_requests_total counter
cold_test_requests_total{route="a"} 1
cold_test_requests_total{route="b"} 2
# HELP cold_test_temperature Current temperature.
# TYPE cold_test_temperature gauge
cold_test_temperature 36.5
# HELP cold_test_latency_seconds Request latency.
# TYPE cold_test_latency_seconds histogram
cold_test_latency_seconds_bucket{le="0.01"} 1
cold_test_latency_seconds_bucket{le="0.1"} 3
cold_test_latency_seconds_bucket{le="1"} 3
cold_test_latency_seconds_bucket{le="+Inf"} 4
cold_test_latency_seconds_sum 2.105
cold_test_latency_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics:
// an observation equal to an upper bound lands in that bucket, one just
// above lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cold_test_bounds", "", []float64{1, 2, 4})
	for _, v := range []float64{1, 2, 4} { // each exactly on a bound
		h.Observe(v)
	}
	h.Observe(1.0000001) // just above 1 → (1, 2]
	h.Observe(4.0000001) // just above the last bound → +Inf
	h.Observe(-5)        // below everything → first bucket

	wantPerBucket := []uint64{2, 2, 1, 1} // (-Inf,1], (1,2], (2,4], (4,+Inf)
	for i, want := range wantPerBucket {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d holds %d observations, want %d", i, got, want)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count() = %d, want 6", h.Count())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported non-zero values")
	}
}

func TestUntouchedTracking(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cold_test_used_total", "")
	r.Gauge("cold_test_never_set", "")
	r.CounterL("cold_test_labelled_total", `x="y"`, "")
	c.Inc()
	got := r.Untouched()
	want := []string{`cold_test_labelled_total{x="y"}`, "cold_test_never_set"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Untouched() = %v, want %v", got, want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("cold_test_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("cold_test_dup_total", "")
}

func TestBadMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("cold test with spaces", "")
}

// Distinct label sets under one family are fine; the family header is
// emitted once (covered by the golden test), and both series count as
// separate touch-tracked instruments.
func TestExpvarBridge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cold_test_bridge_total", "")
	h := r.Histogram("cold_test_bridge_seconds", "", []float64{1})
	c.Add(7)
	h.Observe(0.5)
	h.Observe(2)

	var out map[string]float64
	if err := json.Unmarshal([]byte(r.ExpvarVar().String()), &out); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if out["cold_test_bridge_total"] != 7 {
		t.Errorf("bridge counter = %v, want 7", out["cold_test_bridge_total"])
	}
	if out["cold_test_bridge_seconds"] != 2 { // histograms report their count
		t.Errorf("bridge histogram = %v, want 2", out["cold_test_bridge_seconds"])
	}
}
