package cold

import "github.com/cold-diffusion/cold/internal/colderr"

// Sentinel errors for the failure conditions a caller may want to
// branch on. Internal packages wrap these with context, so always match
// with errors.Is, never with string comparison:
//
//	if _, err := cold.LoadCheckpoint(path); errors.Is(err, cold.ErrCorruptCheckpoint) {
//		// fall back to the previous checkpoint
//	}
var (
	// ErrCorruptCheckpoint reports a checkpoint file that failed framing,
	// checksum or payload validation. Returned (wrapped) by
	// LoadCheckpoint and ResumeTraining.
	ErrCorruptCheckpoint = colderr.ErrCorruptCheckpoint

	// ErrInvalidModel reports a model whose parameters fail structural
	// validation (shape mismatches, non-normalised distributions,
	// NaN/Inf). Returned (wrapped) by LoadModel and Model.Validate.
	ErrInvalidModel = colderr.ErrInvalidModel

	// ErrDegraded reports a query that the degraded-mode serving
	// fallback cannot answer at all, such as topic posteriors without a
	// topic model.
	ErrDegraded = colderr.ErrDegraded
)
