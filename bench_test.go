// bench_test.go regenerates every figure of the paper's evaluation as a
// Go benchmark: BenchmarkFigNN runs the experiment behind figure NN and
// reports its headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Benchmarks use the quick schedule (the
// coldbench CLI runs the paper-strength schedule); EXPERIMENTS.md records
// paper-vs-measured for both.
package cold_test

import (
	"sync"
	"testing"

	"github.com/cold-diffusion/cold/internal/baselines/lda"
	"github.com/cold-diffusion/cold/internal/baselines/tot"
	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/stats"
	"github.com/cold-diffusion/cold/internal/synth"
	"github.com/cold-diffusion/cold/internal/text"
)

const (
	benchC = 6
	benchK = 8
)

var (
	benchOnce sync.Once
	benchData *corpus.Dataset
)

func dataset(b *testing.B) *corpus.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		data, _, err := synth.Generate(synth.Small(1))
		if err != nil {
			panic(err)
		}
		benchData = data
	})
	return benchData
}

func benchSchedule() eval.Schedule {
	s := eval.QuickSchedule()
	s.Iterations, s.BurnIn, s.Folds = 25, 15, 2
	return s
}

// metric extracts series label -> first Y value.
func metric(res *eval.Result, label string) float64 {
	for _, s := range res.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[0].Y
		}
	}
	return 0
}

func lastY(res *eval.Result, label string) float64 {
	for _, s := range res.Series {
		if s.Label == label && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	return 0
}

// BenchmarkFig09 — held-out perplexity vs K for COLD, EUTB and PMTLM.
func BenchmarkFig09(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig9(data, benchC, []int{benchK}, benchSchedule())
	}
	b.ReportMetric(metric(res, "COLD"), "COLD-perplexity")
	b.ReportMetric(metric(res, "EUTB"), "EUTB-perplexity")
	b.ReportMetric(metric(res, "PMTLM"), "PMTLM-perplexity")
}

// BenchmarkFig10 — link-prediction AUC for COLD, PMTLM and MMSB.
func BenchmarkFig10(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig10(data, benchC, benchK, benchSchedule())
	}
	b.ReportMetric(metric(res, "COLD"), "COLD-AUC")
	b.ReportMetric(metric(res, "PMTLM"), "PMTLM-AUC")
	b.ReportMetric(metric(res, "MMSB"), "MMSB-AUC")
}

// BenchmarkFig11 — timestamp-prediction accuracy at the widest sweep
// tolerance for COLD, COLD-NoLink, EUTB and Pipeline.
func BenchmarkFig11(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig11(data, benchC, benchK, nil, benchSchedule())
	}
	b.ReportMetric(lastY(res, "COLD"), "COLD-acc")
	b.ReportMetric(lastY(res, "COLD-NoLink"), "NoLink-acc")
	b.ReportMetric(lastY(res, "EUTB"), "EUTB-acc")
	b.ReportMetric(lastY(res, "Pipeline"), "Pipeline-acc")
}

// BenchmarkFig12 — diffusion-prediction averaged AUC for COLD, TI, WTM.
func BenchmarkFig12(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig12(data, benchC, benchK, benchSchedule())
	}
	b.ReportMetric(metric(res, "COLD"), "COLD-AUC")
	b.ReportMetric(metric(res, "TI"), "TI-AUC")
	b.ReportMetric(metric(res, "WTM"), "WTM-AUC")
}

// BenchmarkFig13a — training time vs data size (linearity of the
// sampler in words + positive links).
func BenchmarkFig13a(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig13a(data, benchC, benchK, []float64{0.25, 0.5, 1}, 2, benchSchedule())
	}
	pts := res.Series[0].Points
	if len(pts) == 3 && pts[0].Y > 0 {
		b.ReportMetric(pts[2].Y/pts[0].Y, "time-ratio-4x-data")
	}
}

// BenchmarkFig13b — training time vs GAS worker count.
func BenchmarkFig13b(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig13b(data, benchC, benchK, []int{1, 2, 4}, benchSchedule())
	}
	pts := res.Series[0].Points
	if len(pts) == 3 && pts[2].Y > 0 {
		b.ReportMetric(pts[0].Y/pts[2].Y, "speedup-4-workers")
	}
}

// BenchmarkFig14 — training time across all methods.
func BenchmarkFig14(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig14(data, benchC, benchK, 2, benchSchedule())
	}
	b.ReportMetric(metric(res, "COLD"), "COLD-sec")
	b.ReportMetric(metric(res, "PMTLM"), "PMTLM-sec")
	b.ReportMetric(metric(res, "MMSB"), "MMSB-sec")
}

// BenchmarkFig15 — online prediction time per method (µs/prediction).
func BenchmarkFig15(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig15(data, benchC, benchK, benchSchedule())
	}
	b.ReportMetric(metric(res, "COLD"), "COLD-us")
	b.ReportMetric(metric(res, "TI"), "TI-us")
	b.ReportMetric(metric(res, "WTM"), "WTM-us")
}

// BenchmarkFig16 — influential-community identification (IC spread of
// the top community).
func BenchmarkFig16(b *testing.B) {
	data := dataset(b)
	cfg := core.DefaultConfig(benchC, benchK)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 25, 15, 1
	m, err := core.Train(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	topic := eval.PickBurstyTopic(m)
	var res *eval.Fig16Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = eval.Fig16(m, topic, 300, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Ranked[0].Spread, "top-community-spread")
}

// BenchmarkFig17 — perplexity over the (C, K) grid; reports the spread
// between best and worst grid cell (sensitivity).
func BenchmarkFig17(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig17(data, []int{3, 6}, []int{4, 8}, benchSchedule())
	}
	b.ReportMetric(gridSpread(res), "perplexity-spread")
}

// BenchmarkFig18 — link AUC over the (C, K) grid.
func BenchmarkFig18(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig18(data, []int{3, 6}, []int{4, 8}, benchSchedule())
	}
	b.ReportMetric(gridSpread(res), "AUC-spread")
}

// BenchmarkFig19 — diffusion AUC over the (C, K) grid.
func BenchmarkFig19(b *testing.B) {
	data := dataset(b)
	var res *eval.Result
	for i := 0; i < b.N; i++ {
		res = eval.Fig19(data, []int{3, 6}, []int{4, 8}, benchSchedule())
	}
	b.ReportMetric(gridSpread(res), "AUC-spread")
}

func gridSpread(res *eval.Result) float64 {
	lo, hi := 1e300, -1e300
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < lo {
				lo = p.Y
			}
			if p.Y > hi {
				hi = p.Y
			}
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// BenchmarkAblationPostTopic — §3.5 post treatment: COLD-NoLink's
// post-level single topic vs classic LDA's word-level topics over each
// user's concatenated posts, measured by held-out perplexity.
func BenchmarkAblationPostTopic(b *testing.B) {
	data := dataset(b)
	noLinks := *data
	noLinks.Links = nil
	s := benchSchedule()
	var coldPerp, wordPerp float64
	for i := 0; i < b.N; i++ {
		splits, err := data.CrossValidation(rngFor(7), 5)
		if err != nil {
			b.Fatal(err)
		}
		split := splits[0]
		train := corpus.Split{TrainPosts: split.TrainPosts}
		trainView := noLinks.TrainView(train)

		cfg := core.DefaultConfig(benchC, benchK)
		cfg.Iterations, cfg.BurnIn, cfg.UseLinks = s.Iterations, s.BurnIn, false
		cm, err := core.Train(trainView, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lcfg := lda.DefaultConfig(benchK)
		lcfg.Iterations, lcfg.BurnIn = s.Iterations, s.BurnIn
		lm, _, err := lda.Train(trainView, lcfg)
		if err != nil {
			b.Fatal(err)
		}
		users := make([]int, 0, len(split.TestPosts))
		bags := make([]text.BagOfWords, 0, len(split.TestPosts))
		for _, pi := range split.TestPosts {
			users = append(users, data.Posts[pi].User)
			bags = append(bags, data.Posts[pi].Words)
		}
		coldPerp = cm.Perplexity(users, bags)
		wordPerp = lm.Perplexity(users, bags)
	}
	b.ReportMetric(coldPerp, "post-topic-perplexity")
	b.ReportMetric(wordPerp, "word-level-perplexity")
}

// BenchmarkAblationMultimodalTime — §3.3 multinomial ψ vs TOT's
// unimodal Beta on strongly bimodal temporal data: timestamp accuracy
// within a 2-slice tolerance.
func BenchmarkAblationMultimodalTime(b *testing.B) {
	cfg := synth.Small(3)
	cfg.BimodalTopicFraction = 0.95
	data, _, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := benchSchedule()
	var coldAcc, totAcc float64
	for i := 0; i < b.N; i++ {
		mcfg := core.DefaultConfig(benchC, benchK)
		mcfg.Iterations, mcfg.BurnIn = s.Iterations, s.BurnIn
		cm, err := core.Train(data, mcfg)
		if err != nil {
			b.Fatal(err)
		}
		tcfg := tot.DefaultConfig(benchK)
		tcfg.Iterations, tcfg.BurnIn = s.Iterations, s.BurnIn
		tm, _, err := tot.Train(data, nil, tcfg)
		if err != nil {
			b.Fatal(err)
		}
		var cPred, tPred, actual []int
		for pi, post := range data.Posts {
			if pi >= 400 {
				break
			}
			cPred = append(cPred, cm.PredictTimestamp(post.User, post.Words))
			tPred = append(tPred, tm.PredictTimestamp(post.Words))
			actual = append(actual, post.Time)
		}
		if coldAcc, err = stats.AccuracyWithinTolerance(cPred, actual, 2); err != nil {
			b.Fatal(err)
		}
		if totAcc, err = stats.AccuracyWithinTolerance(tPred, actual, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(coldAcc, "multinomial-psi-acc")
	b.ReportMetric(totAcc, "beta-time-acc")
}

// BenchmarkAblationNegativeLinks — §4.2 linearity: the positive-link
// sampler's sweep cost must scale with the link count, not with U².
// Quadrupling links at fixed U should roughly quadruple link-sweep time;
// doubling users at fixed links should not.
func BenchmarkAblationNegativeLinks(b *testing.B) {
	gen := func(u int, postsPerUser, linksPerUser float64) *corpus.Dataset {
		cfg := synth.Config{U: u, C: benchC, K: benchK, T: 16, V: 400,
			PostsPerUser: postsPerUser, WordsPerPost: 6, LinksPerUser: linksPerUser, Seed: 9}
		data, _, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	trainTime := func(data *corpus.Dataset) float64 {
		cfg := core.DefaultConfig(benchC, benchK)
		cfg.Iterations, cfg.BurnIn = 10, 5
		_, st, err := core.TrainWithStats(data, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return st.Elapsed.Seconds()
	}
	var linkRatio, userRatio float64
	for i := 0; i < b.N; i++ {
		// base: 200 users, ~800 posts, ~800 links.
		base := trainTime(gen(200, 4, 4))
		// 4× links, same posts and users.
		moreLinks := trainTime(gen(200, 4, 16))
		// 2× users, same total posts and links (halved per-user rates):
		// under O(U²) negative-link modelling this would 4× the network
		// cost; under the positive-only sampler it is flat.
		moreUsers := trainTime(gen(400, 2, 2))
		linkRatio = moreLinks / base
		userRatio = moreUsers / base
	}
	b.ReportMetric(linkRatio, "time-ratio-4x-links")
	b.ReportMetric(userRatio, "time-ratio-2x-users")
}

// BenchmarkAblationNegCorrection — the one deliberate deviation from
// Eq. (2): expected-negative normalisation vs the paper's scalar λ₀, by
// held-out link AUC (see DESIGN.md).
func BenchmarkAblationNegCorrection(b *testing.B) {
	data := dataset(b)
	s := benchSchedule()
	var withCorr, without float64
	for i := 0; i < b.N; i++ {
		splits, err := data.CrossValidation(rngFor(11), 5)
		if err != nil {
			b.Fatal(err)
		}
		split := splits[0]
		train := data.TrainView(corpus.Split{
			TrainPosts: allIdx(len(data.Posts)), TrainLinks: split.TrainLinks})
		for _, corrected := range []bool{true, false} {
			cfg := core.DefaultConfig(benchC, benchK)
			cfg.Iterations, cfg.BurnIn = s.Iterations, s.BurnIn
			cfg.NegCorrection = corrected
			m, err := core.Train(train, cfg)
			if err != nil {
				b.Fatal(err)
			}
			auc := heldOutLinkAUC(b, data, split.TestLinks, m)
			if corrected {
				withCorr = auc
			} else {
				without = auc
			}
		}
	}
	b.ReportMetric(withCorr, "corrected-AUC")
	b.ReportMetric(without, "scalar-lambda0-AUC")
}

func heldOutLinkAUC(b *testing.B, data *corpus.Dataset, testLinks []int, m *core.Model) float64 {
	b.Helper()
	g, err := data.Graph()
	if err != nil {
		b.Fatal(err)
	}
	neg, err := g.NegativeLinks(rngFor(13), 2*len(testLinks))
	if err != nil {
		b.Fatal(err)
	}
	pos := make([]float64, 0, len(testLinks))
	for _, li := range testLinks {
		e := data.Links[li]
		pos = append(pos, m.LinkScore(e.From, e.To))
	}
	negScores := make([]float64, 0, len(neg))
	for _, e := range neg {
		negScores = append(negScores, m.LinkScore(e.From, e.To))
	}
	return stats.AUC(pos, negScores)
}

func rngFor(seed uint64) *rng.RNG { return rng.New(seed) }

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
