module github.com/cold-diffusion/cold

go 1.22
