// Newsburst: the motivating scenario of the paper's introduction and
// Fig 5 in isolated form — a story breaks at a known moment, initiator
// communities spike immediately and the rest adopt it with increasing
// lag. Train COLD on the stream and check how well the extracted
// community-level dynamics recover the planted adoption wave.
package main

import (
	"context"
	"fmt"
	"log"

	cold "github.com/cold-diffusion/cold"
	"github.com/cold-diffusion/cold/internal/stats"
	"github.com/cold-diffusion/cold/internal/synth"
	"github.com/cold-diffusion/cold/internal/viz"
)

func main() {
	log.SetFlags(0)

	scenario := synth.EventStream(17)
	data, gt, eventTopic, err := synth.GenerateEvent(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %s\n", data.Stats())
	fmt.Printf("planted event: topic %d breaking at slice %d\n\n",
		eventTopic, scenario.Base.T/3)

	cfg := cold.DefaultConfig(scenario.Base.C, scenario.Base.K)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, 3
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Find the learned topic that matches the planted event by top-word
	// overlap.
	best, bestOverlap := 0, 0.0
	for k := 0; k < model.Cfg.K; k++ {
		if o := stats.TopKOverlap(gt.Phi[eventTopic], model.Phi[k], 10); o > bestOverlap {
			best, bestOverlap = k, o
		}
	}
	fmt.Printf("learned event topic: %d (top-word overlap %.0f%%)\n\n", best, bestOverlap*100)

	// The adoption wave: per-community learned dynamics of the event
	// topic, ordered by interest.
	fmt.Println("learned adoption wave (communities by interest in the event):")
	interest := make([]float64, model.Cfg.C)
	for c := range interest {
		interest[c] = model.Theta[c][best]
	}
	for _, c := range stats.ArgTopK(interest, model.Cfg.C) {
		_, peak := stats.Max(model.Psi[best][c])
		fmt.Printf("  C%-3d interest=%.3f peak@%-3d %s\n",
			c, interest[c], peak, viz.Sparkline(model.Psi[best][c]))
	}

	// Lag analysis (Fig 7) on the event topic.
	lag := model.PopularityLag(best, 2, 1e-4)
	fmt.Printf("\nhigh-interest peak @%d, medium-interest peak @%d → lag %d slices\n",
		lag.HighPeak, lag.MediumPeak, lag.Lag)

	// Did the model place the eruption at the right moment? Compare the
	// aggregate volume curve's takeoff against the planted event time.
	curve := model.TopicVolumeCurve(best)
	_, learnedPeak := stats.Max(curve)
	fmt.Printf("aggregate event volume peaks at slice %d (planted break at %d)\n",
		learnedPeak, scenario.Base.T/3)
	fmt.Printf("aggregate curve: %s\n", viz.Sparkline(curve))
}
