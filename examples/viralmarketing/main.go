// Viral marketing (§6.6 of the paper): identify the most influential
// communities for a topic by running the Independent Cascade model on
// the extracted community-level diffusion graph, then pick a seed set
// and compare community seeding strategies.
package main

import (
	"context"
	"fmt"
	"log"

	cold "github.com/cold-diffusion/cold"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/rng"
)

func main() {
	log.SetFlags(0)

	data, _, err := cold.Synthesize(cold.SmallSynth(11))
	if err != nil {
		log.Fatal(err)
	}
	cfg := cold.DefaultConfig(6, 8)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, 3
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	topic := eval.PickBurstyTopic(model)
	fmt.Printf("campaign topic: %d\n\n", topic)

	// The community-level diffusion graph for the topic: ζ_kcc',
	// rescaled so the strongest edge activates with probability 0.5.
	g, err := eval.InfluenceGraph(model, topic)
	if err != nil {
		log.Fatal(err)
	}
	r := rng.New(99)

	// 1. Influence degree of each community as a singleton seed.
	fmt.Println("community influence degrees (expected IC spread):")
	ranked := g.RankInfluence(500, r)
	for _, rk := range ranked {
		fmt.Printf("  C%-3d spread=%.3f  interest(theta)=%.3f\n",
			rk.Node, rk.Spread, model.Theta[rk.Node][topic])
	}

	// 2. Greedy seed selection for a 2-community campaign budget.
	seeds := g.GreedySeeds(2, 500, r)
	fmt.Printf("\ngreedy 2-seed campaign: %v (spread %.3f)\n",
		seeds, g.Spread(seeds, 2000, r))

	// 3. Compare against seeding the 2 communities with the highest raw
	//    interest — influence and interest are not the same thing.
	interest := make([]float64, model.Cfg.C)
	for c := range interest {
		interest[c] = model.Theta[c][topic]
	}
	naive := topTwo(interest)
	fmt.Printf("interest-based 2-seed baseline: %v (spread %.3f)\n",
		naive, g.Spread(naive, 2000, r))

	// 4. Most influential members of the top community: users ranked by
	//    membership-weighted community influence.
	deg := g.InfluenceDegree(500, r)
	fmt.Printf("\ntop members of the most influential community C%d:\n", ranked[0].Node)
	type member struct {
		user  int
		score float64
	}
	best := make([]member, 0, 3)
	for i := 0; i < model.U; i++ {
		score := model.Pi[i][ranked[0].Node] * deg[ranked[0].Node]
		switch {
		case len(best) < 3:
			best = append(best, member{i, score})
		case score > best[2].score:
			best[2] = member{i, score}
		}
		for j := len(best) - 1; j > 0 && best[j].score > best[j-1].score; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	for _, m := range best {
		fmt.Printf("  user %-4d membership=%.2f weighted influence=%.3f\n",
			m.user, model.Pi[m.user][ranked[0].Node], m.score)
	}
}

func topTwo(xs []float64) []int {
	a, b := 0, 1
	if xs[b] > xs[a] {
		a, b = b, a
	}
	for i := 2; i < len(xs); i++ {
		switch {
		case xs[i] > xs[a]:
			a, b = i, a
		case xs[i] > xs[b]:
			b = i
		}
	}
	return []int{a, b}
}
