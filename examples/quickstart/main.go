// Quickstart: synthesize a small social stream, train COLD, and print
// what the model extracted — topics, communities, their interests, the
// temporal dynamics and the inter-community influence.
package main

import (
	"context"
	"fmt"
	"log"

	cold "github.com/cold-diffusion/cold"
)

func main() {
	log.SetFlags(0)

	// 1. Data: a synthetic stream with planted communities and topics
	//    (stand-in for a real crawl; see cold.Dataset for the schema).
	data, _, err := cold.Synthesize(cold.SmallSynth(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n\n", data.Stats())

	// 2. Train COLD: 6 communities, 8 topics.
	cfg := cold.DefaultConfig(6, 8)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, 7
	var stats cold.TrainStats
	model, err := cold.Train(context.Background(), data, cfg, cold.WithStats(&stats))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (%d sweeps, %d samples averaged)\n",
		stats.Elapsed.Round(1e6), stats.Sweeps, stats.Samples)
	fmt.Printf("log-likelihood: %.0f -> %.0f\n\n",
		stats.Likelihood[0], stats.Likelihood[len(stats.Likelihood)-1])

	// 3. Topics: the top words of each φ_k.
	fmt.Println("extracted topics (top words):")
	for k := 0; k < model.Cfg.K; k++ {
		ids := model.TopWords(k, 6)
		words := make([]string, len(ids))
		for i, id := range ids {
			words[i] = data.Vocab.Word(id)
		}
		fmt.Printf("  topic %d: %v\n", k, words)
	}

	// 4. Communities: interest mixtures θ_c over topics.
	fmt.Println("\ncommunity interests (top-3 topics by theta):")
	for c := 0; c < model.Cfg.C; c++ {
		top := model.TopTopics(c, 3)
		fmt.Printf("  community %d:", c)
		for _, k := range top {
			fmt.Printf("  t%d=%.2f", k, model.Theta[c][k])
		}
		fmt.Println()
	}

	// 5. Community-level diffusion: the strongest ζ edge per topic.
	fmt.Println("\nstrongest influence edge per topic (zeta = theta*theta*eta):")
	for k := 0; k < model.Cfg.K; k++ {
		bestA, bestB, best := 0, 0, -1.0
		for a := 0; a < model.Cfg.C; a++ {
			for b := 0; b < model.Cfg.C; b++ {
				if a == b {
					continue
				}
				if z := model.Zeta(k, a, b); z > best {
					bestA, bestB, best = a, b, z
				}
			}
		}
		fmt.Printf("  topic %d: C%d -> C%d (zeta=%.4f)\n", k, bestA, bestB, best)
	}

	// 6. A diffusion prediction: will this follower retweet?
	pred := cold.NewPredictor(model, 5)
	if len(data.Retweets) > 0 {
		rt := data.Retweets[0]
		words := data.Posts[rt.Post].Words
		fmt.Println("\ndiffusion prediction on one recorded cascade:")
		for _, u := range rt.Retweeters[:min(2, len(rt.Retweeters))] {
			fmt.Printf("  user %d (did retweet):     score %.4f\n", u,
				pred.Score(rt.Publisher, u, words))
		}
		for _, u := range rt.Ignorers[:min(2, len(rt.Ignorers))] {
			fmt.Printf("  user %d (did not retweet): score %.4f\n", u,
				pred.Score(rt.Publisher, u, words))
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
