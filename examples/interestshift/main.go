// Interest shift (§5.3 of the paper): explore the diffusion patterns the
// community-level representation exposes — the correlation between a
// community's interest in a topic and how much that topic's popularity
// fluctuates inside it (Fig 6), and the time lag between highly- and
// medium-interested communities (Fig 7).
package main

import (
	"context"
	"fmt"
	"log"

	cold "github.com/cold-diffusion/cold"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/viz"
)

func main() {
	log.SetFlags(0)

	data, _, err := cold.Synthesize(cold.SmallSynth(31))
	if err != nil {
		log.Fatal(err)
	}
	cfg := cold.DefaultConfig(6, 8)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, 3
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fig 6: fluctuation intensity by interest band. The paper's finding
	// is that topics fluctuate most inside *medium*-interested
	// communities, while dominant interests stay steady.
	bands := model.BandFluctuation(0, 0)
	fmt.Println("topic fluctuation (variance of psi) by community-interest band:")
	fmt.Printf("  low    interest (<%.0e):   mean fluctuation %.3f over %d pairs\n",
		bands.LowCut, bands.LowMean, bands.LowCount)
	fmt.Printf("  medium interest:            mean fluctuation %.3f over %d pairs\n",
		bands.MediumMean, bands.MediumCount)
	fmt.Printf("  high   interest (>%.0e):   mean fluctuation %.3f over %d pairs\n",
		bands.HighCut, bands.HighMean, bands.HighCnt)

	// Fig 7: popularity lag on the burstiest topic.
	topic := eval.PickBurstyTopic(model)
	lag := model.PopularityLag(topic, 2, 1e-4)
	fmt.Printf("\npopularity lag on topic %d:\n", topic)
	fmt.Printf("  highly-interested median curve: %s (peak at slice %d)\n",
		viz.Sparkline(lag.HighCurve), lag.HighPeak)
	fmt.Printf("  medium-interested median curve: %s (peak at slice %d)\n",
		viz.Sparkline(lag.MedCurve), lag.MediumPeak)
	fmt.Printf("  lag: %d slices\n", lag.Lag)

	// Per-community view of the same topic: interest vs timeline.
	fmt.Printf("\nper-community dynamics of topic %d:\n", topic)
	for c := 0; c < model.Cfg.C; c++ {
		fmt.Printf("  C%-3d interest=%.3f  %s\n",
			c, model.Theta[c][topic], viz.Sparkline(model.Psi[topic][c]))
	}

	// Aggregate lag across all topics: how often do medium-interest
	// communities trail the initiators?
	nonNeg, counted := 0, 0
	for k := 0; k < model.Cfg.K; k++ {
		lc := model.PopularityLag(k, 2, 1e-4)
		if len(lc.MediumCommunities) == 0 {
			continue
		}
		counted++
		if lc.Lag >= 0 {
			nonNeg++
		}
	}
	fmt.Printf("\nacross %d topics with medium-interest communities, %d show a non-negative lag\n",
		counted, nonNeg)
}
