// Retweet prediction (§6.3 of the paper): hold out 20% of the recorded
// retweet cascades, train COLD plus the TI and WTM baselines, and
// compare averaged AUC on "will follower i' spread post d from user i?".
package main

import (
	"context"
	"fmt"
	"log"

	cold "github.com/cold-diffusion/cold"
	"github.com/cold-diffusion/cold/internal/baselines/ti"
	"github.com/cold-diffusion/cold/internal/baselines/wtm"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/stats"
	"github.com/cold-diffusion/cold/internal/text"
)

func main() {
	log.SetFlags(0)

	data, _, err := cold.Synthesize(cold.SmallSynth(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s\n", data.Stats())

	// Hold out 20% of the retweet tuples.
	r := rng.New(5)
	perm := r.Perm(len(data.Retweets))
	cut := len(perm) / 5
	testIdx, trainIdx := perm[:cut], perm[cut:]
	fmt.Printf("retweet tuples: %d train / %d test\n\n", len(trainIdx), len(testIdx))

	// COLD never sees the tuples; it learns from text, time and links.
	cfg := cold.DefaultConfig(6, 8)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, 3
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	predictor := cold.NewPredictor(model, 5)

	// TI and WTM learn user-level influence from the training tuples.
	tcfg := ti.DefaultConfig(8)
	tcfg.Seed = 3
	tiModel, _, err := ti.Train(data, trainIdx, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	wtmModel, _, err := wtm.Train(data, trainIdx, wtm.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func(name string, score func(i, ip int, w text.BagOfWords) float64) {
		tuples := make([][2][]float64, 0, len(testIdx))
		for _, ri := range testIdx {
			rt := data.Retweets[ri]
			words := data.Posts[rt.Post].Words
			var pos, neg []float64
			for _, u := range rt.Retweeters {
				pos = append(pos, score(rt.Publisher, u, words))
			}
			for _, u := range rt.Ignorers {
				neg = append(neg, score(rt.Publisher, u, words))
			}
			tuples = append(tuples, [2][]float64{pos, neg})
		}
		fmt.Printf("%-6s averaged AUC: %.4f\n", name, stats.AveragedAUC(tuples))
	}
	evaluate("COLD", predictor.Score)
	evaluate("TI", tiModel.Score)
	evaluate("WTM", wtmModel.Score)

	// Show the anatomy of one prediction: Eq. (5) topic posterior and
	// Eq. (6) community-level influence.
	if len(testIdx) > 0 {
		rt := data.Retweets[testIdx[0]]
		words := data.Posts[rt.Post].Words
		post := predictor.TopicPosterior(rt.Publisher, words)
		bestK, bestP := 0, 0.0
		for k, p := range post {
			if p > bestP {
				bestK, bestP = k, p
			}
		}
		fmt.Printf("\nanatomy of one prediction (publisher %d):\n", rt.Publisher)
		fmt.Printf("  inferred post topic: %d (posterior %.2f)\n", bestK, bestP)
		fmt.Printf("  publisher top communities: %v\n", model.TopCommunities(rt.Publisher, 3))
		if len(rt.Retweeters) > 0 {
			u := rt.Retweeters[0]
			fmt.Printf("  influence on retweeter %d at that topic: %.5f\n",
				u, predictor.InfluenceAt(rt.Publisher, u, bestK))
		}
	}
}
