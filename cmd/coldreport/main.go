// Command coldreport trains COLD on a dataset and writes a complete
// analysis report: dataset statistics, convergence diagnostics, topic
// word clouds, community interest profiles, the community-level
// diffusion map of the burstiest topic, diffusion-pattern analyses,
// influential communities and a posterior predictive check.
//
// Usage:
//
//	coldreport -data dataset.json -comms 6 -topics 8 -out report.md
//	coldreport -out report.md                  # synthesize a demo stream
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/synth"
	"github.com/cold-diffusion/cold/internal/text"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldreport: ")

	dataPath := flag.String("data", "", "dataset JSON (default: synthesize the small preset)")
	comms := flag.Int("comms", 6, "communities C")
	topics := flag.Int("topics", 8, "topics K")
	iters := flag.Int("iters", 60, "Gibbs sweeps")
	workers := flag.Int("workers", 1, "GAS workers")
	seed := flag.Uint64("seed", 1, "seed")
	out := flag.String("out", "report.md", "output markdown path")
	flag.Parse()

	var data *corpus.Dataset
	var err error
	if *dataPath != "" {
		data, err = corpus.LoadFile(*dataPath)
	} else {
		data, _, err = synth.Generate(synth.Small(*seed))
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig(*comms, *topics)
	cfg.Iterations = *iters
	cfg.BurnIn = *iters * 5 / 8
	cfg.Workers = *workers
	cfg.Seed = *seed
	model, stats, err := core.TrainWithStats(data, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# COLD analysis report\n\ngenerated %s\n\n", time.Now().UTC().Format(time.RFC3339))
	fmt.Fprintf(&b, "## Dataset\n\n`%s`\n\n", data.Stats())

	d := core.Diagnose(stats.Likelihood)
	fmt.Fprintf(&b, "## Training\n\nC=%d K=%d, %d sweeps in %v (%d samples averaged)\n\n",
		cfg.C, cfg.K, stats.Sweeps, stats.Elapsed.Round(time.Millisecond), stats.Samples)
	fmt.Fprintf(&b, "- log-likelihood %.0f → %.0f (improvement %.0f)\n", stats.Likelihood[0],
		stats.Likelihood[len(stats.Likelihood)-1], d.Improvement)
	fmt.Fprintf(&b, "- converged at sweep %d, Geweke z = %.2f\n\n", d.ConvergedAt, d.GewekeZ)

	// Topic coherence over a post sample.
	bags := make([]text.BagOfWords, 0, 2000)
	for i, p := range data.Posts {
		if i >= 2000 {
			break
		}
		bags = append(bags, p.Words)
	}
	fmt.Fprintf(&b, "- mean topic coherence (UMass, top-8 words): %.3f\n\n",
		model.ModelCoherence(bags, 8))

	topic := eval.PickBurstyTopic(model)
	fmt.Fprintf(&b, "## Topics (Fig 8)\n\n```\n%s```\n\n", eval.Fig8(model, data, model.Cfg.K))
	fmt.Fprintf(&b, "## Community-level diffusion (Fig 5)\n\n```\n%s```\n\n", eval.Fig5(model, data, topic))
	fmt.Fprintf(&b, "## Diffusion patterns (Figs 6–7)\n\n```\n%s\n%s```\n\n",
		eval.Fig6(model), eval.Fig7(model, topic, max(2, cfg.C/3)))

	if r16, err := eval.Fig16(model, topic, 300, *seed); err == nil {
		fmt.Fprintf(&b, "## Influential communities (Fig 16)\n\n```\n%s```\n\n", r16.Render())
	}

	fmt.Fprintf(&b, "## Posterior predictive check\n\n```\n%s```\n\n",
		model.PosteriorPredictiveCheck(data, 20, *seed).Render())

	fmt.Fprintf(&b, "## Volume forecast quality\n\nmean model-vs-actual topic volume correlation: %.3f\n",
		eval.VolumeForecastQuality(model, data))

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, b.Len())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
