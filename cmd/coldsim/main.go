// Command coldsim simulates information cascades from a trained model:
// Independent Cascade runs over the user-level influence graph of a
// topic (edge probabilities from COLD's Eq. 6 strengths), reporting the
// spread distribution of a chosen seed user and a cascade trace.
//
// Usage:
//
//	coldsim -model model.json -data dataset.json -topic 3 -seed-user 12 -runs 500
//	coldsim                              # synthesize + train a demo first
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"sort"
	"syscall"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/rng"
	"github.com/cold-diffusion/cold/internal/stats"
	"github.com/cold-diffusion/cold/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldsim: ")

	dataPath := flag.String("data", "", "dataset JSON (default: synthesize the small preset)")
	modelPath := flag.String("model", "", "model JSON (default: train in-process)")
	topicFlag := flag.Int("topic", -1, "topic to diffuse (default: the burstiest)")
	seedUser := flag.Int("seed-user", -1, "seed user id (default: the most influential)")
	runs := flag.Int("runs", 500, "Monte-Carlo cascade runs")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	var data *corpus.Dataset
	var err error
	if *dataPath != "" {
		data, err = corpus.LoadFile(*dataPath)
	} else {
		data, _, err = synth.Generate(synth.Small(*seed))
	}
	if err != nil {
		log.Fatal(err)
	}

	var model *core.Model
	if *modelPath != "" {
		model, err = core.LoadModelFile(*modelPath)
	} else {
		// The in-process demo training honours Ctrl-C: it stops at the
		// next sweep boundary rather than dying mid-sweep.
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		cfg := core.DefaultConfig(6, 8)
		cfg.Iterations, cfg.BurnIn, cfg.Seed = 40, 25, *seed
		model, err = core.TrainContext(ctx, data, cfg)
		stop()
	}
	if err != nil {
		log.Fatal(err)
	}

	topic := *topicFlag
	if topic < 0 || topic >= model.Cfg.K {
		topic = eval.PickBurstyTopic(model)
	}
	predictor := core.NewPredictor(model, 5)
	g, err := eval.UserInfluenceGraph(predictor, data, topic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("influence graph: %d users, %d edges, topic %d\n", g.N(), g.M(), topic)

	r := rng.New(*seed)
	start := *seedUser
	if start < 0 || start >= data.U {
		ranked, err := eval.InfluentialUsers(model, predictor, data, topic, 1, 200, *seed)
		if err != nil || len(ranked) == 0 {
			log.Fatal("no influential user found")
		}
		start = ranked[0].Node
		fmt.Printf("seed user: %d (most influential, singleton spread %.2f)\n", start, ranked[0].Spread)
	} else {
		fmt.Printf("seed user: %d\n", start)
	}

	// Spread distribution over Monte-Carlo runs.
	sizes := make([]float64, *runs)
	for i := range sizes {
		active := g.Simulate([]int{start}, r)
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		sizes[i] = float64(n)
	}
	sort.Float64s(sizes)
	fmt.Printf("cascade size over %d runs: mean %.2f median %.0f p90 %.0f max %.0f\n",
		*runs, stats.Mean(sizes), stats.Median(sizes), stats.Quantile(sizes, 0.9), sizes[len(sizes)-1])

	// One sample cascade: the final activation set of a single run.
	fmt.Println("\nsample cascade:")
	active := g.Simulate([]int{start}, rng.New(*seed+99))
	reached := make([]int, 0)
	for v, a := range active {
		if a && v != start {
			reached = append(reached, v)
		}
	}
	fmt.Printf("  %d -> %d users activated", start, len(reached))
	if len(reached) > 12 {
		reached = reached[:12]
	}
	fmt.Printf(": %v\n", reached)
}
