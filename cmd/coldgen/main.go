// Command coldgen generates a synthetic social-stream dataset (the
// stand-in for the paper's Weibo crawls) and writes it as JSON.
//
// Usage:
//
//	coldgen -preset small -seed 1 -out dataset.json
//	coldgen -users 500 -comms 8 -topics 10 -slices 32 -vocab 2000 -out d.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/cold-diffusion/cold/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldgen: ")

	preset := flag.String("preset", "", "size preset: small, medium or large (overrides dimension flags)")
	users := flag.Int("users", 240, "number of users")
	comms := flag.Int("comms", 6, "number of planted communities")
	topics := flag.Int("topics", 8, "number of planted topics")
	slices := flag.Int("slices", 24, "number of time slices")
	vocab := flag.Int("vocab", 800, "vocabulary size")
	posts := flag.Float64("posts", 20, "mean posts per user")
	words := flag.Float64("words", 9, "mean words per post")
	links := flag.Float64("links", 10, "mean outgoing links per user")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("out", "dataset.json", "output path")
	flag.Parse()

	var cfg synth.Config
	switch *preset {
	case "small":
		cfg = synth.Small(*seed)
	case "medium":
		cfg = synth.Medium(*seed)
	case "large":
		cfg = synth.Large(*seed)
	case "":
		cfg = synth.Config{U: *users, C: *comms, K: *topics, T: *slices, V: *vocab,
			PostsPerUser: *posts, WordsPerPost: *words, LinksPerUser: *links, Seed: *seed}
	default:
		log.Fatalf("unknown preset %q (want small, medium or large)", *preset)
	}

	data, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := data.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, data.Stats())
}
