// Command coldserve is the long-running COLD prediction server: JSON
// endpoints for retweet/diffusion, link, timestamp and topic queries,
// wrapped in the resilience stack of internal/serve — hot model reload
// with validation and rollback, bounded admission with load shedding,
// per-request deadlines and panic containment, SIGTERM-triggered drain,
// and a degraded popularity-prior mode when no model is loadable.
//
// Usage:
//
//	coldserve -model model.json -data dataset.json -addr :8080
//
// The -model flag may name a file or a publish directory; in a
// directory the newest .json/.gob model is served, and the watcher
// picks up newly dropped models, rejecting invalid ones while the
// last-good model keeps serving.
//
// Endpoints (versioned under /v1; the legacy unversioned health routes
// answer with 308 redirects):
//
//	GET  /v1/healthz           process liveness
//	GET  /v1/readyz            starting | ready | degraded | draining
//	GET  /v1/model             serving model info
//	POST /v1/model/reload      force a reload of the current candidate
//	POST /v1/model/rollback    return to the previous generation
//	GET  /v1/stats             request/shed/panic counters
//	GET  /metrics              Prometheus text exposition (alias /v1/metrics)
//	POST /v1/predict/retweet   {"publisher","candidate","post"|"words"}
//	POST /v1/predict/link      {"from","to"}
//	POST /v1/predict/time      {"user","post"|"words"}
//	POST /v1/topics            {"user","post"|"words","topn"}
//	POST /v1/score/batch       {"items":[{"kind","..."},...]} mixed-kind batch
//	GET  /v1/rank/{user}       precomputed top-k retweet candidates
//
// The prediction hot path is batch-first: single-score requests are
// coalesced by a micro-batcher (-batch-window/-batch-max) and answered
// through a generation-keyed score cache (-score-cache); cached entries
// die wholesale on every reload or rollback. Candidate rankings are
// precomputed per reload to -rank-k depth.
//
// Every non-2xx response body is the shared JSON error envelope
// {"error":{"code","message","retry_after_ms?"}}.
//
// With -debug-addr a second, operator-only listener exposes
// net/http/pprof under /debug/pprof/, expvar under /debug/vars and the
// same /metrics; keep it off the public network.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/cold-diffusion/cold/internal/cluster"
	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("coldserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "model.json", "model file, or directory whose newest .json/.gob model is served")
	dataPath := flag.String("data", "", "dataset for post-index queries and the degraded-mode fallback (optional)")
	topComm := flag.Int("topcomm", 5, "TopComm size for the predictor")
	poll := flag.Duration("poll", 2*time.Second, "model watch interval")
	maxInFlight := flag.Int("max-inflight", 64, "concurrency ceiling the adaptive limiter grows toward; excess is queued or shed")
	limitFloor := flag.Int("limit-floor", 0, "adaptive limiter floor; 0 derives from the ceiling, negative pins the static limit (seed behaviour)")
	queueCap := flag.Int("queue-cap", 0, "deadline-aware admission queue capacity; 0 derives from the ceiling, negative disables queueing")
	brownoutHold := flag.Duration("brownout-hold", 0, "minimum dwell at a brownout level before stepping back down; 0 uses the default")
	brownoutRankK := flag.Int("brownout-rank-k", 0, "rank depth served at brownout L2+; 0 uses a quarter of -rank-k")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed requests (jittered ±50% per response)")
	batchWindow := flag.Duration("batch-window", time.Millisecond, "micro-batch coalescing window for single-score requests; negative disables")
	batchMax := flag.Int("batch-max", 64, "micro-batch flushes early at this many coalesced requests")
	cacheEntries := flag.Int("score-cache", 32768, "generation-keyed score cache capacity in entries; negative disables")
	rankK := flag.Int("rank-k", 50, "per-community candidate-ranking depth precomputed at each model load")
	loadRetries := flag.Int("load-retries", 6, "startup model-load attempts before degrading or exiting")
	shardIndex := flag.Int("shard-index", 0, "this replica's shard index when serving behind coldrouter")
	shardCount := flag.Int("shard-count", 0, "total shard count; 0 serves all users (unsharded)")
	debugAddr := flag.String("debug-addr", "", "optional operator listener for pprof + expvar + /metrics (keep private)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFormat, obs.ParseLevel(*logLevel))
	logf := obs.Printf(logger.With("component", "serve"))

	reg := obs.NewRegistry()
	metrics := serve.NewMetrics(reg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var data *corpus.Dataset
	if *dataPath != "" {
		var err error
		if data, err = corpus.LoadFile(*dataPath); err != nil {
			log.Fatalf("load dataset: %v", err)
		}
	}

	backoff := serve.DefaultBackoff
	backoff.Attempts = *loadRetries
	mgr := serve.NewManager(serve.ManagerConfig{
		Path:    *modelPath,
		TopComm: *topComm,
		RankK:   *rankK,
		Poll:    *poll,
		Backoff: backoff,
		Logf:    logf,
		Metrics: metrics,
	})
	if err := mgr.LoadInitial(ctx); err != nil {
		if data == nil {
			log.Fatalf("no model loadable and no -data for fallback: %v", err)
		}
		fb, fberr := core.NewFallbackPredictor(data)
		if fberr != nil {
			log.Fatalf("no model loadable (%v) and fallback construction failed: %v", err, fberr)
		}
		mgr.SetFallback(serve.NewFallbackEngine(fb))
		logger.Warn("no model loadable; serving degraded popularity prior until one appears",
			"error", err, "model_path", *modelPath)
	}
	go mgr.Watch(ctx)

	cfg := serve.Config{
		MaxInFlight:    *maxInFlight,
		LimitFloor:     *limitFloor,
		QueueCap:       *queueCap,
		BrownoutHold:   *brownoutHold,
		BrownoutRankK:  *brownoutRankK,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		RetryAfter:     *retryAfter,
		BatchWindow:    *batchWindow,
		BatchMax:       *batchMax,
		CacheEntries:   *cacheEntries,
		Logf:           logf,
		Metrics:        metrics,
	}
	if *shardCount > 0 {
		if *shardIndex < 0 || *shardIndex >= *shardCount {
			log.Fatalf("-shard-index %d out of range [0,%d)", *shardIndex, *shardCount)
		}
		idx, n := *shardIndex, *shardCount
		cfg.ShardIndex, cfg.ShardCount = idx, n
		cfg.ShardOwner = func(user int) bool { return cluster.ShardOf(user, n) == idx }
		logger.Info("sharded serving enabled", "shard", idx, "shards", n)
	}
	srv := serve.New(cfg, mgr, data)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		logger.Info("debug listener up (pprof, expvar, metrics)", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, obs.DebugMux(reg)); err != nil {
				logger.Warn("debug listener stopped", "error", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "model", *modelPath)
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	logger.Info("shut down cleanly")
}
