// Command coldserve is the long-running COLD prediction server: JSON
// endpoints for retweet/diffusion, link, timestamp and topic queries,
// wrapped in the resilience stack of internal/serve — hot model reload
// with validation and rollback, bounded admission with load shedding,
// per-request deadlines and panic containment, SIGTERM-triggered drain,
// and a degraded popularity-prior mode when no model is loadable.
//
// Usage:
//
//	coldserve -model model.json -data dataset.json -addr :8080
//
// The -model flag may name a file or a publish directory; in a
// directory the newest .json/.gob model is served, and the watcher
// picks up newly dropped models, rejecting invalid ones while the
// last-good model keeps serving.
//
// Endpoints:
//
//	GET  /healthz              process liveness
//	GET  /readyz               starting | ready | degraded | draining
//	GET  /v1/model             serving model info
//	POST /v1/model/reload      force a reload of the current candidate
//	POST /v1/model/rollback    return to the previous generation
//	GET  /v1/stats             request/shed/panic counters
//	POST /v1/predict/retweet   {"publisher","candidate","post"|"words"}
//	POST /v1/predict/link      {"from","to"}
//	POST /v1/predict/time      {"user","post"|"words"}
//	POST /v1/predict/topics    {"user","post"|"words","topn"}
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("coldserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "model.json", "model file, or directory whose newest .json/.gob model is served")
	dataPath := flag.String("data", "", "dataset for post-index queries and the degraded-mode fallback (optional)")
	topComm := flag.Int("topcomm", 5, "TopComm size for the predictor")
	poll := flag.Duration("poll", 2*time.Second, "model watch interval")
	maxInFlight := flag.Int("max-inflight", 64, "admitted concurrent prediction requests; excess is shed with 429")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed requests")
	loadRetries := flag.Int("load-retries", 6, "startup model-load attempts before degrading or exiting")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	var data *corpus.Dataset
	if *dataPath != "" {
		var err error
		if data, err = corpus.LoadFile(*dataPath); err != nil {
			log.Fatalf("load dataset: %v", err)
		}
	}

	backoff := serve.DefaultBackoff
	backoff.Attempts = *loadRetries
	mgr := serve.NewManager(serve.ManagerConfig{
		Path:    *modelPath,
		TopComm: *topComm,
		Poll:    *poll,
		Backoff: backoff,
		Logf:    log.Printf,
	})
	if err := mgr.LoadInitial(ctx); err != nil {
		if data == nil {
			log.Fatalf("no model loadable and no -data for fallback: %v", err)
		}
		fb, fberr := core.NewFallbackPredictor(data)
		if fberr != nil {
			log.Fatalf("no model loadable (%v) and fallback construction failed: %v", err, fberr)
		}
		mgr.SetFallback(serve.NewFallbackEngine(fb))
		log.Printf("DEGRADED: no model loadable (%v); serving popularity prior until one appears at %s", err, *modelPath)
	}
	go mgr.Watch(ctx)

	srv := serve.New(serve.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		RetryAfter:     *retryAfter,
		Logf:           log.Printf,
	}, mgr, data)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (model %s)", ln.Addr(), *modelPath)
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Printf("shut down cleanly")
}
