// Command coldpredict serves online predictions from a trained model:
// diffusion scores (will i' retweet i's post?), link probabilities,
// time-stamp predictions and post topic posteriors.
//
// Queries are read line-by-line from stdin:
//
//	retweet <publisher> <candidate> <postIndex>   → diffusion probability
//	link <from> <to>                              → link probability
//	time <user> <postIndex>                       → predicted time slice
//	topics <user> <postIndex>                     → top-3 topic posterior
//
// Usage:
//
//	coldpredict -model model.json -data dataset.json < queries.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldpredict: ")

	modelPath := flag.String("model", "model.json", "trained model (from coldtrain)")
	dataPath := flag.String("data", "dataset.json", "dataset providing post content")
	topComm := flag.Int("topcomm", 5, "TopComm size for the predictor")
	flag.Parse()

	model, err := core.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := corpus.LoadFile(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	predictor := core.NewPredictor(model, *topComm)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	scanner := bufio.NewScanner(os.Stdin)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		if err := handle(out, fields, model, predictor, data); err != nil {
			fmt.Fprintf(out, "error line %d: %v\n", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}

func handle(out *bufio.Writer, fields []string, model *core.Model, predictor *core.Predictor, data *corpus.Dataset) error {
	arg := func(i int, max int) (int, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("missing argument %d", i)
		}
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("argument %d: %v", i, err)
		}
		if v < 0 || v >= max {
			return 0, fmt.Errorf("argument %d out of range [0,%d)", i, max)
		}
		return v, nil
	}
	switch fields[0] {
	case "retweet":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		ip, err := arg(2, model.U)
		if err != nil {
			return err
		}
		post, err := arg(3, len(data.Posts))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "retweet %d->%d post %d: %.6f\n", i, ip, post,
			predictor.Score(i, ip, data.Posts[post].Words))
	case "link":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		ip, err := arg(2, model.U)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "link %d->%d: %.6f\n", i, ip, model.LinkScore(i, ip))
	case "time":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		post, err := arg(2, len(data.Posts))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "time user %d post %d: slice %d (actual %d)\n", i, post,
			model.PredictTimestamp(i, data.Posts[post].Words), data.Posts[post].Time)
	case "topics":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		post, err := arg(2, len(data.Posts))
		if err != nil {
			return err
		}
		tp := predictor.TopicPosterior(i, data.Posts[post].Words)
		top := stats.ArgTopK(tp, 3)
		fmt.Fprintf(out, "topics user %d post %d:", i, post)
		for _, k := range top {
			fmt.Fprintf(out, " t%d=%.3f", k, tp[k])
		}
		fmt.Fprintln(out)
	default:
		return fmt.Errorf("unknown query %q (want retweet, link, time or topics)", fields[0])
	}
	return nil
}
