// Command coldpredict serves online predictions from a trained model:
// diffusion scores (will i' retweet i's post?), link probabilities,
// time-stamp predictions and post topic posteriors.
//
// Queries are read line-by-line from stdin:
//
//	retweet <publisher> <candidate> <postIndex>   → diffusion probability
//	link <from> <to>                              → link probability
//	time <user> <postIndex>                       → predicted time slice
//	topics <user> <postIndex>                     → top-3 topic posterior
//
// Usage:
//
//	coldpredict -model model.json -data dataset.json < queries.txt
//	coldpredict -server http://host:8080 -chunk 32 < queries.txt
//
// With -server the model is not loaded locally: queries ride a running
// coldserve or coldrouter through POST /v1/score/batch, one round-trip
// per -chunk queries instead of one per query. Range validation then
// happens server-side and answers a per-item error slot, which skips
// that line only.
//
// Malformed query lines are reported to stderr with their line number
// and skipped — one bad row cannot abort a batch job. Valid results go
// to stdout only; a summary of skips is printed at the end, and the
// exit status is non-zero when no query parsed at all.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldpredict: ")

	modelPath := flag.String("model", "model.json", "trained model (from coldtrain)")
	dataPath := flag.String("data", "dataset.json", "dataset providing post content")
	topComm := flag.Int("topcomm", 5, "TopComm size for the predictor")
	server := flag.String("server", "", "base URL of a running coldserve or coldrouter; queries go through POST /v1/score/batch instead of a local model")
	chunkSize := flag.Int("chunk", 32, "queries per batch round-trip in -server mode")
	flag.Parse()

	if *server != "" {
		runRemote(*server, *chunkSize)
		return
	}

	model, err := core.LoadModelFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	data, err := corpus.LoadFile(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	predictor := core.NewPredictor(model, *topComm)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20) // tolerate long lines
	// A malformed record must never abort the batch: each bad line is
	// reported to stderr with its line number, counted, and skipped, so
	// stdout carries only valid results and one bad row in a million
	// costs one row, not the job.
	lineNo, handled, skipped := 0, 0, 0
	firstBad := []int{}
	for scanner.Scan() {
		lineNo++
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		if err := handle(out, fields, model, predictor, data); err != nil {
			skipped++
			if len(firstBad) < 5 {
				firstBad = append(firstBad, lineNo)
			}
			log.Printf("line %d: skipped: %v", lineNo, err)
			continue
		}
		handled++
	}
	if err := scanner.Err(); err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	if skipped > 0 {
		log.Printf("summary: %d queries answered, %d malformed lines skipped (first at lines %v)",
			handled, skipped, firstBad)
	}
	out.Flush()
	// A batch where nothing parsed is an operator error, not a quiet success.
	if handled == 0 && skipped > 0 {
		os.Exit(1)
	}
}

func handle(out *bufio.Writer, fields []string, model *core.Model, predictor *core.Predictor, data *corpus.Dataset) error {
	// Strict per-field validation: every argument must parse as a
	// decimal integer in range, and the field count must match the
	// query form exactly — trailing junk is a malformed record, not
	// something to silently ignore.
	want := map[string]int{"retweet": 4, "link": 3, "time": 3, "topics": 3}
	if n, ok := want[fields[0]]; ok && len(fields) != n {
		return fmt.Errorf("%s query has %d fields, want %d", fields[0], len(fields), n)
	}
	arg := func(i int, max int) (int, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("missing argument %d", i)
		}
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("argument %d %q: not an integer", i, fields[i])
		}
		if v < 0 || v >= max {
			return 0, fmt.Errorf("argument %d out of range [0,%d)", i, max)
		}
		return v, nil
	}
	switch fields[0] {
	case "retweet":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		ip, err := arg(2, model.U)
		if err != nil {
			return err
		}
		post, err := arg(3, len(data.Posts))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "retweet %d->%d post %d: %.6f\n", i, ip, post,
			predictor.Score(i, ip, data.Posts[post].Words))
	case "link":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		ip, err := arg(2, model.U)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "link %d->%d: %.6f\n", i, ip, model.LinkScore(i, ip))
	case "time":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		post, err := arg(2, len(data.Posts))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "time user %d post %d: slice %d (actual %d)\n", i, post,
			model.PredictTimestamp(i, data.Posts[post].Words), data.Posts[post].Time)
	case "topics":
		i, err := arg(1, model.U)
		if err != nil {
			return err
		}
		post, err := arg(2, len(data.Posts))
		if err != nil {
			return err
		}
		tp := predictor.TopicPosterior(i, data.Posts[post].Words)
		top := stats.ArgTopK(tp, 3)
		fmt.Fprintf(out, "topics user %d post %d:", i, post)
		for _, k := range top {
			fmt.Fprintf(out, " t%d=%.3f", k, tp[k])
		}
		fmt.Fprintln(out)
	default:
		return fmt.Errorf("unknown query %q (want retweet, link, time or topics)", fields[0])
	}
	return nil
}
