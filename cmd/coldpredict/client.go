package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// remoteQuery is one parsed stdin line headed for the batch endpoint:
// the wire item plus what the local printer needs to format its answer.
type remoteQuery struct {
	line int
	kind string
	a, b int // retweet: publisher,candidate; link: from,to; time/topics: user,-
	post int
	item map[string]any
}

// remoteItemResult is the per-item slot of a /v1/score/batch response.
type remoteItemResult struct {
	Status string   `json:"status"`
	Score  *float64 `json:"score"`
	Slice  *int     `json:"slice"`
	Topics []struct {
		Topic  int     `json:"topic"`
		Weight float64 `json:"weight"`
	} `json:"topics"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// runRemote scores stdin queries against a running coldserve or
// coldrouter: lines are parsed and validated locally (a bad line is
// reported with its line number and skipped, exactly like local mode),
// then shipped in chunks — one POST /v1/score/batch round-trip per
// chunkSize queries instead of one per query. Per-item server errors
// skip their own line only; transport failures abort the job. Post
// indices resolve on the server, so timestamp answers print without the
// dataset's actual slice.
func runRemote(base string, chunkSize int) {
	if chunkSize <= 0 {
		chunkSize = 32
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)

	lineNo, handled, skipped := 0, 0, 0
	firstBad := []int{}
	skip := func(line int, err error) {
		skipped++
		if len(firstBad) < 5 {
			firstBad = append(firstBad, line)
		}
		log.Printf("line %d: skipped: %v", line, err)
	}

	var batch []remoteQuery
	flush := func() {
		if len(batch) == 0 {
			return
		}
		results := scoreChunk(client, base, batch)
		for i := range batch {
			if err := printRemote(out, &batch[i], &results[i]); err != nil {
				skip(batch[i].line, err)
			} else {
				handled++
			}
		}
		batch = batch[:0]
	}

	for scanner.Scan() {
		lineNo++
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		q, err := parseRemote(fields)
		if err != nil {
			skip(lineNo, err)
			continue
		}
		q.line = lineNo
		batch = append(batch, q)
		if len(batch) >= chunkSize {
			flush()
		}
	}
	flush()
	if err := scanner.Err(); err != nil {
		log.Fatalf("reading queries: %v", err)
	}
	if skipped > 0 {
		log.Printf("summary: %d queries answered, %d lines skipped (first at lines %v)",
			handled, skipped, firstBad)
	}
	out.Flush()
	if handled == 0 && skipped > 0 {
		os.Exit(1)
	}
}

// parseRemote validates one query line into its batch wire item. Field
// counts and integer syntax are checked here; index ranges are the
// server's to judge (it owns the model and dataset).
func parseRemote(fields []string) (remoteQuery, error) {
	q := remoteQuery{kind: fields[0]}
	want := map[string]int{"retweet": 4, "link": 3, "time": 3, "topics": 3}
	n, ok := want[q.kind]
	if !ok {
		return q, fmt.Errorf("unknown query %q (want retweet, link, time or topics)", q.kind)
	}
	if len(fields) != n {
		return q, fmt.Errorf("%s query has %d fields, want %d", q.kind, len(fields), n)
	}
	arg := func(i int) (int, error) {
		v, err := strconv.Atoi(fields[i])
		if err != nil {
			return 0, fmt.Errorf("argument %d %q: not an integer", i, fields[i])
		}
		if v < 0 {
			return 0, fmt.Errorf("argument %d is negative", i)
		}
		return v, nil
	}
	var err error
	switch q.kind {
	case "retweet":
		if q.a, err = arg(1); err != nil {
			return q, err
		}
		if q.b, err = arg(2); err != nil {
			return q, err
		}
		if q.post, err = arg(3); err != nil {
			return q, err
		}
		q.item = map[string]any{"kind": "retweet", "publisher": q.a, "candidate": q.b, "post": q.post}
	case "link":
		if q.a, err = arg(1); err != nil {
			return q, err
		}
		if q.b, err = arg(2); err != nil {
			return q, err
		}
		q.item = map[string]any{"kind": "link", "from": q.a, "to": q.b}
	default: // time, topics
		if q.a, err = arg(1); err != nil {
			return q, err
		}
		if q.post, err = arg(2); err != nil {
			return q, err
		}
		q.item = map[string]any{"kind": q.kind, "user": q.a, "post": q.post}
		if q.kind == "topics" {
			q.item["topn"] = 3
		}
	}
	return q, nil
}

// scoreChunk ships one chunk through the batch endpoint. A transport or
// envelope failure is a job failure (the whole chunk is gone, not one
// line), so it aborts like an unreadable stdin would.
func scoreChunk(client *http.Client, base string, batch []remoteQuery) []remoteItemResult {
	items := make([]map[string]any, len(batch))
	for i := range batch {
		items[i] = batch[i].item
	}
	body, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		log.Fatalf("encode batch: %v", err)
	}
	resp, err := client.Post(base+"/v1/score/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("batch request: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("batch response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("batch request: server answered %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var rep struct {
		Results []remoteItemResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		log.Fatalf("decode batch response: %v", err)
	}
	if len(rep.Results) != len(batch) {
		log.Fatalf("server answered %d results for %d items", len(rep.Results), len(batch))
	}
	return rep.Results
}

// printRemote renders one answered item in the local-mode output shape.
func printRemote(out *bufio.Writer, q *remoteQuery, res *remoteItemResult) error {
	if res.Status != "ok" {
		if res.Error != nil {
			return fmt.Errorf("server: %s: %s", res.Error.Code, res.Error.Message)
		}
		return fmt.Errorf("server: item failed with no error detail")
	}
	switch q.kind {
	case "retweet":
		if res.Score == nil {
			return fmt.Errorf("server: retweet answer missing score")
		}
		fmt.Fprintf(out, "retweet %d->%d post %d: %.6f\n", q.a, q.b, q.post, *res.Score)
	case "link":
		if res.Score == nil {
			return fmt.Errorf("server: link answer missing score")
		}
		fmt.Fprintf(out, "link %d->%d: %.6f\n", q.a, q.b, *res.Score)
	case "time":
		if res.Slice == nil {
			return fmt.Errorf("server: time answer missing slice")
		}
		fmt.Fprintf(out, "time user %d post %d: slice %d\n", q.a, q.post, *res.Slice)
	default: // topics
		fmt.Fprintf(out, "topics user %d post %d:", q.a, q.post)
		for _, tw := range res.Topics {
			fmt.Fprintf(out, " t%d=%.3f", tw.Topic, tw.Weight)
		}
		fmt.Fprintln(out)
	}
	return nil
}
