package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cold-diffusion/cold/internal/checkpoint"
	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/faultinject"
	"github.com/cold-diffusion/cold/internal/ingest"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/overload"
	"github.com/cold-diffusion/cold/internal/serve"
	"github.com/cold-diffusion/cold/internal/synth"
	"github.com/cold-diffusion/cold/internal/text"
)

// metricsSmoke runs a miniature train → resume → serve cycle crafted to
// fire every instrument the observability layer registers — parallel
// sweeps, a divergence rollback, checkpoint save/load, degraded and
// healthy serving, shedding, a contained panic, a rejected request, a
// failed and a successful reload — then fails if any registered series
// was never updated. An instrument nobody fires is either dead code or
// a broken wire, and this catches it in CI rather than on a dashboard
// mid-incident.
func metricsSmoke(seed uint64) error {
	defer faultinject.Reset()
	reg := obs.NewRegistry()

	data, _, err := synth.Generate(synth.Config{U: 40, C: 3, K: 4, T: 6, V: 100,
		PostsPerUser: 5, WordsPerPost: 5, LinksPerUser: 4, Seed: seed})
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "coldbench-metrics-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ckptDir := filepath.Join(dir, "ckpt")

	// Training: parallel sampler (GAS metrics), periodic checkpoints,
	// and one injected NaN likelihood to drive the rollback counter.
	cfg := core.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.SampleLag = 8, 4, 1
	cfg.Workers = 2
	cfg.Seed = seed
	var fired atomic.Bool
	faultinject.Set(faultinject.CoreLikelihood, func(args ...any) {
		if fired.CompareAndSwap(false, true) {
			*args[0].(*float64) = math.NaN()
		}
	})
	opts := core.RunOptions{CheckpointDir: ckptDir, CheckpointEvery: 2,
		Observer: core.NewTrainObserver(reg)}
	model, stats, err := core.TrainRun(context.Background(), data, cfg, opts)
	faultinject.Clear(faultinject.CoreLikelihood)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if stats.Rollbacks == 0 {
		return fmt.Errorf("injected divergence did not trigger a rollback")
	}

	// Resume from the newest checkpoint: load timing + resume counter.
	latest, _, err := checkpoint.Latest(ckptDir)
	if err != nil {
		return fmt.Errorf("no checkpoint written: %w", err)
	}
	if _, _, err := core.ResumeTraining(context.Background(), latest, data, opts); err != nil {
		return fmt.Errorf("resume: %w", err)
	}

	// Stall supervision + checkpoint-failure tolerance: a scheduled
	// delay fault hangs a scatter worker past the grace (stall + worker
	// restart counters) while a sync fault fails one checkpoint save
	// (tolerated-failure counter).
	storm := faultinject.NewSchedule(seed,
		faultinject.Fault{Point: faultinject.GasScatterWorker, Prob: 1, Limit: 1,
			Mode: faultinject.ModeDelay, Delay: 2 * time.Second},
		faultinject.Fault{Point: faultinject.CkptFSSync, Prob: 1, Limit: 1,
			Mode: faultinject.ModeError},
	)
	storm.Arm()
	stallOpts := opts
	stallOpts.StallGrace = 50 * time.Millisecond
	stallOpts.SweepTimeout = 30 * time.Second
	stallOpts.MaxRollbacks = 10
	_, sstats, err := core.TrainRun(context.Background(), data, cfg, stallOpts)
	storm.Disarm()
	if err != nil {
		return fmt.Errorf("stall-storm train: %w", err)
	}
	if sstats.Stalls == 0 {
		return fmt.Errorf("injected worker delay did not trigger a supervised stall")
	}
	if sstats.CheckpointFailures == 0 {
		return fmt.Errorf("injected fsync fault did not fail a checkpoint write")
	}

	// Quarantine: bit-flip the newest generation; a directory resume
	// walks back to the previous one and counts the quarantined file.
	newest, _, err := checkpoint.Latest(ckptDir)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(newest)
	if err != nil {
		return err
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		return err
	}
	if _, qstats, err := core.ResumeTrainingLatest(context.Background(), ckptDir, data, opts); err != nil {
		return fmt.Errorf("latest-valid resume: %w", err)
	} else if len(qstats.Quarantined) == 0 {
		return fmt.Errorf("corrupt newest generation was not quarantined")
	}

	// Serving: start degraded (fallback prior + missing model file), then
	// reload onto the trained model.
	mt := serve.NewMetrics(reg)
	modelPath := filepath.Join(dir, "model.json")
	mgr := serve.NewManager(serve.ManagerConfig{Path: modelPath, TopComm: 3,
		Logf: func(string, ...any) {}, Metrics: mt})
	fb, err := core.NewFallbackPredictor(data)
	if err != nil {
		return err
	}
	mgr.SetFallback(serve.NewFallbackEngine(fb))
	if err := mgr.Reload(); err == nil {
		return fmt.Errorf("reload of a missing model file unexpectedly succeeded")
	}

	// QueueCap -1 disables the admission queue so the parked-slot probe
	// below sheds with the classic 429 instead of waiting in line.
	srv := serve.New(serve.Config{MaxInFlight: 1, QueueCap: -1, RequestTimeout: 10 * time.Second,
		RetryAfter: time.Second, Metrics: mt}, mgr, data)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	post := func(path, body string, want int) error {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("POST %s = %d, want %d", path, resp.StatusCode, want)
		}
		return nil
	}

	retweet := `{"publisher":0,"candidate":1,"post":0}`
	for _, rq := range []struct {
		path, body string
		want       int
	}{
		{"/v1/predict/retweet", retweet, 200}, // degraded answer
		{"/v1/predict/link", `{"from":0,"to":1}`, 200},
		{"/v1/predict/time", `{"user":0,"post":0}`, 200},
		{"/v1/topics", `{"user":0,"post":0}`, 503}, // fallback can't do topics
		{"/v1/predict/retweet", `{}`, 400},         // rejected input
	} {
		if err := post(rq.path, rq.body, rq.want); err != nil {
			return err
		}
	}

	// A handler panic is contained into a 500.
	faultinject.Set(faultinject.ServeHandler, func(...any) { panic("metrics smoke") })
	if err := post("/v1/predict/retweet", retweet, 500); err != nil {
		return err
	}
	faultinject.Clear(faultinject.ServeHandler)

	// Park the single admission slot and shed the next request.
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	faultinject.Set(faultinject.ServeHandler, func(...any) {
		started <- struct{}{}
		<-release
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = post("/v1/predict/retweet", retweet, 200)
	}()
	<-started
	if err := post("/v1/predict/retweet", retweet, 429); err != nil {
		return err
	}
	close(release)
	wg.Wait()
	faultinject.Clear(faultinject.ServeHandler)

	// Publish the trained model and reload; scoring through the loaded
	// engine drives the predictor cache/latency instruments.
	if err := model.SaveFile(modelPath); err != nil {
		return err
	}
	if err := mgr.Reload(); err != nil {
		return fmt.Errorf("reload of the trained model: %w", err)
	}
	if err := post("/v1/predict/retweet", retweet, 200); err != nil {
		return err
	}
	if err := post("/v1/topics", `{"user":0,"post":0}`, 200); err != nil {
		return err
	}

	// Batch-first hot path: a mixed batch fills the score cache (route
	// "batch", misses), its repeat answers from the cache (hits), and a
	// rank lookup serves the precomputed tables (route "rank").
	batchBody := `{"items":[{"kind":"retweet","publisher":0,"candidate":1,"post":0},{"kind":"link","from":0,"to":1}]}`
	if err := post("/v1/score/batch", batchBody, 200); err != nil {
		return err
	}
	if err := post("/v1/score/batch", batchBody, 200); err != nil {
		return err
	}
	if mt.CacheHits.Value() == 0 {
		return fmt.Errorf("repeated batch never hit the score cache")
	}
	rankResp, err := http.Get(ts.URL + "/v1/rank/0")
	if err != nil {
		return err
	}
	rankResp.Body.Close()
	if rankResp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/rank/0 = %d, want 200", rankResp.StatusCode)
	}

	// Full-triggered flushes and LRU eviction: BatchMax 1 makes every
	// coalesced single a "full" flush, and a 16-entry cache (one slot
	// per shard) must evict by pigeonhole after 17 distinct keys.
	tiny := serve.New(serve.Config{MaxInFlight: 4, RequestTimeout: 10 * time.Second,
		RetryAfter: time.Second, Metrics: mt, BatchMax: 1, CacheEntries: 16}, mgr, data)
	tts := httptest.NewServer(tiny.Handler())
	for i := 0; i < 17; i++ {
		body := fmt.Sprintf(`{"from":%d,"to":%d}`, i, i+1)
		resp, err := http.Post(tts.URL+"/v1/predict/link", "application/json", strings.NewReader(body))
		if err != nil {
			tts.Close()
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tts.Close()
			return fmt.Errorf("tiny-cache link %d = %d, want 200", i, resp.StatusCode)
		}
	}
	tts.Close()
	if mt.BatchFlushes["full"].Value() == 0 {
		return fmt.Errorf("BatchMax=1 singles never produced a full-triggered flush")
	}
	if mt.CacheEvictions.Value() == 0 {
		return fmt.Errorf("17 distinct keys in a 16-entry cache never evicted")
	}

	// Sharded refusal: a server that owns no users answers 421 and counts
	// the misroute.
	shardSrv := serve.New(serve.Config{MaxInFlight: 4, RequestTimeout: 10 * time.Second,
		RetryAfter: time.Second, Metrics: mt,
		ShardIndex: 0, ShardCount: 2, ShardOwner: func(int) bool { return false }}, mgr, data)
	sts := httptest.NewServer(shardSrv.Handler())
	resp, err := http.Post(sts.URL+"/v1/predict/retweet", "application/json", strings.NewReader(retweet))
	if err != nil {
		return err
	}
	resp.Body.Close()
	sts.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		return fmt.Errorf("non-owned user = %d, want 421", resp.StatusCode)
	}

	// Watcher supervision: a panicking load hook crashes the watch loop
	// on its first candidate; the supervised restart increments
	// cold_serve_watch_restarts_total.
	faultinject.Set(faultinject.ServeModelLoad, func(...any) { panic("metrics smoke watcher") })
	watchMgr := serve.NewManager(serve.ManagerConfig{Path: modelPath, TopComm: 3,
		Poll:    2 * time.Millisecond,
		Backoff: serve.Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1, Attempts: 1},
		Logf:    func(string, ...any) {}, Metrics: mt})
	wctx, wcancel := context.WithCancel(context.Background())
	watchDone := make(chan struct{})
	go func() { defer close(watchDone); watchMgr.Watch(wctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for mt.WatchRestarts.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	wcancel()
	<-watchDone
	faultinject.Clear(faultinject.ServeModelLoad)
	if mt.WatchRestarts.Value() == 0 {
		return fmt.Errorf("crashed watcher was never restarted")
	}

	if err := overloadSmoke(mt, mgr, data, modelPath); err != nil {
		return fmt.Errorf("overload cycle: %w", err)
	}

	if err := ingestSmoke(reg, dir, model); err != nil {
		return fmt.Errorf("ingest cycle: %w", err)
	}

	if err := clusterSmoke(reg, serve.NewFallbackEngine(fb)); err != nil {
		return fmt.Errorf("cluster cycle: %w", err)
	}

	if un := reg.Untouched(); len(un) > 0 {
		return fmt.Errorf("metrics registered but never updated during the cycle:\n  %s",
			strings.Join(un, "\n  "))
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		return err
	}
	fmt.Printf("metrics smoke: every registered series updated (%d exposition lines)\n",
		strings.Count(b.String(), "\n"))
	return nil
}

// overloadSmoke drives the adaptive-admission and brownout instruments:
// the four shed reasons, the brownout/limit/queue gauges, a
// previous-generation stale cache hit, a popularity-prior fallback
// answer under deep brownout, and the past-deadline suppression guard.
func overloadSmoke(mt *serve.Metrics, mgr *serve.Manager, data *corpus.Dataset, modelPath string) error {
	defer faultinject.Reset()
	// Batching is disabled so the past-deadline leg is deterministic: a
	// cache hit bypasses the engine's ctx checks and writes a late 200
	// that only the deadlineWriter can (and must) suppress.
	srv := serve.New(serve.Config{MaxInFlight: 1, RequestTimeout: 10 * time.Second,
		RetryAfter: time.Second, BatchWindow: -1, Metrics: mt}, mgr, data)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	retweet := `{"publisher":0,"candidate":1,"post":0}`
	send := func(path, body string, hdr map[string]string, want int) error {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			return fmt.Errorf("POST %s %v = %d, want %d", path, hdr, resp.StatusCode, want)
		}
		return nil
	}

	// The health probe mirrors the limit and queue gauges and feeds the
	// ladder a pressure sample.
	hz, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		return err
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/healthz = %d, want 200", hz.StatusCode)
	}

	// Dead on arrival: an already-expired deadline sheds at admission.
	if err := send("/v1/predict/retweet", retweet,
		map[string]string{overload.DeadlineHeader: "0"}, 503); err != nil {
		return fmt.Errorf("DOA deadline: %w", err)
	}

	// Expired in queue: park the single slot; a queued short-deadline
	// request dies in line rather than being served late.
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	faultinject.Set(faultinject.ServeHandler, func(...any) {
		started <- struct{}{}
		<-release
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = send("/v1/predict/retweet", retweet, nil, 200)
	}()
	<-started
	if err := send("/v1/predict/retweet", retweet,
		map[string]string{overload.DeadlineHeader: "40"}, 503); err != nil {
		return fmt.Errorf("expired in queue: %w", err)
	}
	close(release)
	wg.Wait()
	faultinject.Clear(faultinject.ServeHandler)

	// Warm the cache at the current generation (also the tuple the
	// past-deadline and stale legs replay).
	if err := send("/v1/predict/retweet", retweet, nil, 200); err != nil {
		return fmt.Errorf("cache warm: %w", err)
	}

	// Past-deadline suppression: the writer fence only matters in the
	// narrow race where the handler finishes after the deadline but
	// before the context abort is scheduled — any wider miss is already
	// answered by the context path. Sleeping exactly the deadline lands
	// in that window within a few tries; every attempt must answer
	// something (200 in time, or a 503 from either deadline path), and
	// the fence counter must fire before the attempts run out.
	faultinject.Set(faultinject.ServeHandler, func(...any) { time.Sleep(30 * time.Millisecond) })
	for i := 0; i < 200 && mt.PastDeadline.Value() == 0; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict/retweet", strings.NewReader(retweet))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(overload.DeadlineHeader, "30")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != 200 && resp.StatusCode != 503 {
			return fmt.Errorf("deadline-racing request = %d, want 200 or 503", resp.StatusCode)
		}
	}
	faultinject.Clear(faultinject.ServeHandler)
	if mt.PastDeadline.Value() == 0 {
		return fmt.Errorf("late success was never suppressed by the deadline-writer fence")
	}

	// L4 sheds non-interactive traffic; L3 answers background tiers from
	// the popularity prior.
	srv.Brownout().Force(4)
	if err := send("/v1/score/batch",
		`{"items":[{"kind":"retweet","publisher":0,"candidate":1,"post":0}]}`, nil, 503); err != nil {
		return fmt.Errorf("L4 bulk shed: %w", err)
	}
	srv.Brownout().Force(3)
	if err := send("/v1/predict/retweet", retweet,
		map[string]string{overload.PriorityHeader: "background"}, 200); err != nil {
		return fmt.Errorf("L3 fallback answer: %w", err)
	}
	if mt.FallbackServed.Value() == 0 {
		return fmt.Errorf("background tier at L3 was not answered from the prior")
	}

	// L1 serves slightly-stale cache entries: reload to a new generation
	// and replay the warmed tuple — the previous generation answers.
	now := time.Now().Add(time.Second)
	if err := os.Chtimes(modelPath, now, now); err != nil {
		return err
	}
	if err := mgr.Reload(); err != nil {
		return fmt.Errorf("reload for the stale-cache leg: %w", err)
	}
	srv.Brownout().Force(1)
	if err := send("/v1/predict/retweet", retweet, nil, 200); err != nil {
		return fmt.Errorf("stale-eligible request: %w", err)
	}
	if mt.StaleServed.Value() == 0 {
		return fmt.Errorf("previous-generation cache entry was not served at L1")
	}

	// Every shed reason must have fired by now (queue_full via the
	// parked-slot 429 earlier in the cycle).
	for _, reason := range []overload.Reason{
		overload.ReasonQueueFull, overload.ReasonDeadlineUnmeetable,
		overload.ReasonExpiredInQueue, overload.ReasonBrownout,
	} {
		if mt.Sheds[reason].Value() == 0 {
			return fmt.Errorf("shed reason %q was never counted", reason)
		}
	}
	return nil
}

// ingestSmoke drives every cold_ingest_* instrument: durable appends
// with segment rotation, a shed submission, a micro-batch fold with a
// model publish, then a crash-style reopen over a log with one sealed
// segment bit-flipped — quarantining the damaged suffix and replaying
// the surviving prefix.
func ingestSmoke(reg *obs.Registry, dir string, model *core.Model) error {
	im := ingest.NewMetrics(reg)
	ctx := context.Background()
	rec := func(i int) ingest.PostRecord {
		return ingest.PostRecord{
			User:  fmt.Sprintf("smoke-%d", i%3),
			Slice: i % model.T,
			Words: text.BagOfWords{IDs: []int{(i * 7) % model.V, (i*7 + 1) % model.V}, Counts: []int{1, 2}},
		}
	}

	// Shed + fold + publish: a one-slot queue sheds the second record;
	// the drain folds the first, checkpoints, and publishes a generation.
	shedIng, _, err := ingest.New(ingest.Config{
		WALDir: filepath.Join(dir, "wal-shed"), Base: model, Sweeps: 2,
		QueueCap: 1, Policy: ingest.PolicyShed,
		PublishPath: filepath.Join(dir, "live.gob"), Metrics: im,
	})
	if err != nil {
		return err
	}
	if _, err := shedIng.Submit(ctx, rec(0)); err != nil {
		return err
	}
	if _, err := shedIng.Submit(ctx, rec(1)); !errors.Is(err, ingest.ErrOverloaded) {
		return fmt.Errorf("over-capacity submit: %v, want ErrOverloaded", err)
	}
	if err := shedIng.Drain(ctx); err != nil {
		return err
	}
	if im.Publishes.Value() == 0 {
		return fmt.Errorf("drain did not publish a model generation")
	}

	// Quarantine + replay: stream onto tiny segments, abandon without a
	// checkpoint (kill -9 style), flip one byte in a sealed mid-chain
	// segment, reopen. Recovery quarantines the flipped segment and its
	// successors; the surviving prefix replays into the fold state.
	walDir := filepath.Join(dir, "wal-crash")
	crashIng, _, err := ingest.New(ingest.Config{
		WALDir: walDir, Base: model, Sweeps: 2, SegmentBytes: 256, Metrics: im,
	})
	if err != nil {
		return err
	}
	for i := 0; i < 20; i++ {
		if _, err := crashIng.Submit(ctx, rec(i)); err != nil {
			return err
		}
	}
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil {
		return err
	}
	sort.Strings(segs)
	if len(segs) < 3 {
		return fmt.Errorf("only %d wal segments, need >=3 for a mid-chain flip", len(segs))
	}
	victim := segs[1]
	raw, err := os.ReadFile(victim)
	if err != nil {
		return err
	}
	raw[len(raw)-1] ^= 0x10
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		return err
	}
	// crashIng is deliberately abandoned un-drained: its open segment
	// handle is exactly what a killed process leaves behind.
	recovered, stats, err := ingest.New(ingest.Config{
		WALDir: walDir, Base: model, Sweeps: 2, SegmentBytes: 256, Metrics: im,
	})
	if err != nil {
		return err
	}
	if len(stats.Quarantined) == 0 {
		return fmt.Errorf("bit-flipped segment was not quarantined")
	}
	if im.Replayed.Value() == 0 {
		return fmt.Errorf("surviving wal prefix was not replayed")
	}
	if err := recovered.Drain(ctx); err != nil {
		return err
	}

	// Background-tier yield: with the serving tier reporting brownout
	// L3+, every fold tick is skipped and counted; Drain (the shutdown
	// path) still folds.
	hotIng, _, err := ingest.New(ingest.Config{
		WALDir: filepath.Join(dir, "wal-hot"), Base: model, Sweeps: 2,
		FoldEvery: 2 * time.Millisecond,
		Brownout:  func() int { return 4 },
		Metrics:   im,
	})
	if err != nil {
		return err
	}
	hctx, hcancel := context.WithCancel(ctx)
	hotIng.Start(hctx)
	if _, err := hotIng.Submit(ctx, rec(0)); err != nil {
		hcancel()
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for im.FoldsDeferred.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if im.FoldsDeferred.Value() == 0 {
		hcancel()
		return fmt.Errorf("browned-out fold loop never deferred a tick")
	}
	if err := hotIng.Drain(ctx); err != nil {
		hcancel()
		return fmt.Errorf("drain while hot: %w", err)
	}
	hcancel()
	return nil
}
