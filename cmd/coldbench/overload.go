package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/faultinject"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/overload"
	"github.com/cold-diffusion/cold/internal/serve"
)

// The overload phase of `coldbench -load -load-overload` throws a
// deterministic 3x mixed-tier storm at the adaptive admission stack and
// records what the robustness layer promises: interactive goodput held
// near its unloaded baseline, zero responses signed off past their
// propagated deadline, and a brownout ladder that walks back to L0 with
// the concurrency limit re-grown once the storm passes. The record
// anchors BENCH_4.json; the gates make it a CI tripwire.

// otier is one synthetic client population: its X-Cold-Priority header
// and the deadline it propagates per request.
type otier struct {
	name     string
	deadline time.Duration
}

var overloadTiers = []otier{
	{"interactive", 400 * time.Millisecond},
	{"batch", 600 * time.Millisecond},
	{"background", 500 * time.Millisecond},
}

// tierGoodput is one tier's client-side view of one load phase.
type tierGoodput struct {
	Sent    int     `json:"sent"`
	OK      int     `json:"ok"`      // 200 within the propagated deadline
	LateOK  int     `json:"late_ok"` // 200 observed past deadline + grace; must be 0
	Goodput float64 `json:"goodput"` // OK / Sent
}

// overloadRecord is the machine-readable result of the overload phase.
type overloadRecord struct {
	Ceiling      int `json:"ceiling"`
	StormWorkers int `json:"storm_workers"`

	// Baseline drives interactive-only traffic at ~1x capacity with no
	// injected tail; Storm is the 3x mixed-tier burst train with a heavy
	// tail every 6th request.
	Baseline map[string]*tierGoodput `json:"baseline"`
	Storm    map[string]*tierGoodput `json:"storm"`

	// InteractiveRatio = storm interactive goodput / baseline interactive
	// goodput — the headline number the CI gate holds above its floor.
	InteractiveRatio float64 `json:"interactive_goodput_ratio"`

	ShedsByReason      map[string]uint64 `json:"sheds_by_reason"`
	PeakBrownoutLevel  int               `json:"peak_brownout_level"`
	RecoveryLevels     []int             `json:"recovery_levels"` // distinct ladder levels sampled after the storm
	RecoveredToL0      bool              `json:"recovered_to_l0"`
	LimitAfterRecovery int               `json:"limit_after_recovery"`
	Backoffs           uint64            `json:"limiter_backoffs"`
	Grows              uint64            `json:"limiter_grows"`
}

// oLatency is the injected service-time profile: a base cost that grows
// with in-slot concurrency (congestion the AIMD limiter can relieve by
// backing off) plus, when tailEvery > 0, a deterministic heavy tail
// every tailEvery-th request.
type oLatency struct {
	inSlot    atomic.Int64
	n         atomic.Int64
	tailEvery atomic.Int64
}

func (ol *oLatency) inject() {
	k := ol.inSlot.Add(1)
	d := 3*time.Millisecond + time.Duration(k)*time.Millisecond
	if te := ol.tailEvery.Load(); te > 0 && ol.n.Add(1)%te == 0 {
		d = 60 * time.Millisecond
	}
	time.Sleep(d)
	ol.inSlot.Add(-1)
}

// oCounts accumulates one tier's outcomes across a phase.
type oCounts struct {
	sent   atomic.Uint64
	ok     atomic.Uint64
	lateOK atomic.Uint64
}

func (c *oCounts) snapshot() *tierGoodput {
	tg := &tierGoodput{
		Sent:   int(c.sent.Load()),
		OK:     int(c.ok.Load()),
		LateOK: int(c.lateOK.Load()),
	}
	if tg.Sent > 0 {
		tg.Goodput = float64(tg.OK) / float64(tg.Sent)
	}
	return tg
}

// overloadRequest posts one scored prediction with the tier's priority
// and deadline headers; status 0 means a connection-level failure.
func overloadRequest(client *http.Client, base string, body []byte, tier otier) int {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/predict/retweet", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(overload.PriorityHeader, tier.name)
	req.Header.Set(overload.DeadlineHeader, strconv.FormatInt(tier.deadline.Milliseconds(), 10))
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}

// driveOverloadBursts fires `workers` closed-loop clients (tier by
// round-robin over tiers) for `bursts` on/off cycles and returns the
// per-tier counts. A 100ms client-side grace absorbs scheduling delay
// on noisy runners; the server-side deadline guard is what must never
// sign off late.
func driveOverloadBursts(client *http.Client, base string, tiers []otier,
	workers, bursts int, on, off time.Duration) map[string]*oCounts {
	counts := make(map[string]*oCounts, len(tiers))
	for _, tier := range tiers {
		counts[tier.name] = &oCounts{}
	}
	body, _ := json.Marshal(map[string]int{"publisher": 0, "candidate": 1, "post": 0})
	for b := 0; b < bursts; b++ {
		stop := time.Now().Add(on)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			tier := tiers[i%len(tiers)]
			c := counts[tier.name]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(stop) {
					start := time.Now()
					code := overloadRequest(client, base, body, tier)
					elapsed := time.Since(start)
					c.sent.Add(1)
					if code == http.StatusOK {
						switch {
						case elapsed <= tier.deadline:
							c.ok.Add(1)
						case elapsed > tier.deadline+100*time.Millisecond:
							c.lateOK.Add(1)
						}
					}
				}
			}()
		}
		wg.Wait()
		time.Sleep(off)
	}
	return counts
}

// runOverloadPhase stands up one adaptive server over the trained model
// and measures the storm trajectory. It fails (a CI gate, not a
// measurement) when interactive goodput under storm drops below
// ratioFloor times its baseline, when any response lands past its
// deadline, or when the ladder does not walk monotonically back to L0
// with the limit re-grown.
func runOverloadPhase(modelPath string, data *corpus.Dataset, ratioFloor float64) (*overloadRecord, error) {
	defer faultinject.Reset()
	const ceiling = 8
	const stormWorkers = 3 * ceiling

	reg := obs.NewRegistry()
	mt := serve.NewMetrics(reg)
	quiet := func(string, ...any) {}
	mgr := serve.NewManager(serve.ManagerConfig{
		Path: modelPath, TopComm: 5, RankK: 50, Logf: quiet, Metrics: mt,
	})
	if err := mgr.Reload(); err != nil {
		return nil, err
	}
	srv := serve.New(serve.Config{
		MaxInFlight: ceiling, BrownoutHold: 150 * time.Millisecond,
		RequestTimeout: 2 * time.Second, RetryAfter: time.Second,
		Logf: quiet, Metrics: mt,
	}, mgr, data)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: stormWorkers}}
	defer client.CloseIdleConnections()

	rec := &overloadRecord{Ceiling: ceiling, StormWorkers: stormWorkers}
	lat := &oLatency{}
	faultinject.Set(faultinject.ServeHandler, func(...any) { lat.inject() })

	// Baseline: interactive-only at ~1x capacity, no tail. This is the
	// goodput the storm phase is measured against.
	baseline := driveOverloadBursts(client, base, overloadTiers[:1],
		ceiling, 2, 300*time.Millisecond, 50*time.Millisecond)
	rec.Baseline = map[string]*tierGoodput{"interactive": baseline["interactive"].snapshot()}

	// Storm: 3x mixed-tier closed-loop burst train with the heavy tail
	// armed. Sample the ladder between bursts for the peak level.
	lat.tailEvery.Store(6)
	storm := driveOverloadBursts(client, base, overloadTiers,
		stormWorkers, 3, 300*time.Millisecond, 100*time.Millisecond)
	lat.tailEvery.Store(0)
	rec.Storm = make(map[string]*tierGoodput, len(overloadTiers))
	for name, c := range storm {
		rec.Storm[name] = c.snapshot()
	}
	if lvl := srv.Brownout().Level(); lvl > rec.PeakBrownoutLevel {
		rec.PeakBrownoutLevel = lvl
	}

	// Gates on the storm itself.
	for name, tg := range rec.Storm {
		if tg.LateOK > 0 {
			return rec, fmt.Errorf("%d %s responses served past their deadline under storm", tg.LateOK, name)
		}
	}
	if rec.Baseline["interactive"].LateOK > 0 {
		return rec, fmt.Errorf("%d interactive responses served past deadline at baseline", rec.Baseline["interactive"].LateOK)
	}
	bg := rec.Baseline["interactive"].Goodput
	sg := rec.Storm["interactive"].Goodput
	if bg > 0 {
		rec.InteractiveRatio = sg / bg
	}
	if rec.Baseline["interactive"].Sent == 0 || rec.Storm["interactive"].Sent == 0 {
		return rec, fmt.Errorf("overload phase produced no interactive traffic")
	}
	if ratioFloor > 0 && rec.InteractiveRatio < ratioFloor {
		return rec, fmt.Errorf("interactive goodput under storm %.3f fell below %.2fx baseline %.3f",
			sg, ratioFloor, bg)
	}

	// Recovery A: keep the (now fast) server saturated so the limiter's
	// growth condition holds and the limit re-grows to the ceiling.
	body, _ := json.Marshal(map[string]int{"publisher": 0, "candidate": 1, "post": 0})
	regrow := time.Now().Add(6 * time.Second)
	for srv.Overload().Limit() < ceiling && time.Now().Before(regrow) {
		var wg sync.WaitGroup
		for i := 0; i < ceiling; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				overloadRequest(client, base, body, otier{"interactive", 2 * time.Second})
			}()
		}
		wg.Wait()
	}
	rec.LimitAfterRecovery = srv.Overload().Limit()

	// Recovery B: trickle light traffic so the ladder observes falling
	// pressure; the sampled level sequence must be monotone
	// non-increasing and end at L0.
	cool := time.Now().Add(6 * time.Second)
	last := srv.Brownout().Level()
	rec.RecoveryLevels = append(rec.RecoveryLevels, last)
	for last > 0 && time.Now().Before(cool) {
		overloadRequest(client, base, body, otier{"interactive", 2 * time.Second})
		time.Sleep(10 * time.Millisecond)
		lvl := srv.Brownout().Level()
		if lvl > last {
			return rec, fmt.Errorf("brownout level rose L%d -> L%d during recovery; must be monotone non-increasing", last, lvl)
		}
		if lvl != last {
			rec.RecoveryLevels = append(rec.RecoveryLevels, lvl)
			last = lvl
		}
	}
	rec.RecoveredToL0 = last == 0
	if !rec.RecoveredToL0 {
		return rec, fmt.Errorf("brownout level still L%d after the recovery window, want L0", last)
	}
	if rec.LimitAfterRecovery < ceiling {
		return rec, fmt.Errorf("concurrency limit did not re-grow: %d/%d", rec.LimitAfterRecovery, ceiling)
	}

	st := srv.Overload().Stats()
	rec.Backoffs, rec.Grows = st.Backoffs, st.Grows
	rec.ShedsByReason = make(map[string]uint64, len(st.Sheds))
	for reason, n := range st.Sheds {
		rec.ShedsByReason[string(reason)] = n
	}
	return rec, nil
}
