// Command coldbench regenerates the paper's evaluation figures. Each
// -fig target prints the same rows/series the corresponding figure
// reports; "all" runs everything.
//
// Usage:
//
//	coldbench -fig 9                 # perplexity vs K
//	coldbench -fig 13b -workers 1,2,4,8
//	coldbench -fig all -quick        # smoke-run every figure
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldbench: ")

	fig := flag.String("fig", "all", "figure to regenerate: 5,6,7,8,9,10,11,12,13a,13b,14,15,16,17,18,19,table2 or all")
	dataPath := flag.String("data", "", "dataset JSON (default: synthesize the small preset)")
	preset := flag.String("preset", "small", "synthetic preset when -data is empty")
	comms := flag.Int("comms", 0, "communities C (default: preset's planted C)")
	topics := flag.Int("topics", 0, "topics K (default: preset's planted K)")
	workersFlag := flag.String("workers", "1,2,4,8", "worker counts for fig 13b")
	quickFlag := flag.Bool("quick", false, "reduced schedule (fewer folds/iterations)")
	format := flag.String("format", "table", "output format for series figures: table or tsv")
	seed := flag.Uint64("seed", 1, "experiment seed")
	metricsFlag := flag.Bool("metrics", false, "run the observability smoke: a tiny train+serve cycle that must update every registered metric")
	jsonPath := flag.String("json", "", "time the Gibbs sweep and write a machine-readable benchmark record to this path instead of regenerating figures")
	benchSweeps := flag.Int("bench-sweeps", 5, "timed sweeps per kernel for -json")
	benchWarmup := flag.Int("bench-warmup", 2, "untimed warmup sweeps per kernel for -json")
	benchWorkers := flag.String("bench-workers", "1,2,4,8", "worker counts for the parallel legs of -json (must include 1)")
	benchPresets := flag.String("bench-presets", "small,medium,large", "synthetic presets benchmarked by -json")
	benchMinSpeedup := flag.Float64("bench-min-speedup", 0, "fail -json if any preset's 4-worker projected speedup is below this (0 disables)")
	loadPath := flag.String("load", "", "serve the small model and measure the prediction hot path under open-loop Zipf load, writing a machine-readable record to this path")
	loadRate := flag.Float64("load-rate", 3000, "offered scores per second for -load")
	loadRequests := flag.Int("load-requests", 4000, "scored items per phase per mode for -load")
	loadDistinct := flag.Int("load-distinct", 2000, "distinct request tuples in the -load Zipf pool")
	loadZipf := flag.Float64("load-zipf", 1.4, "Zipf skew of the -load request stream (must be > 1)")
	loadChunk := flag.Int("load-chunk", 32, "items per batch round-trip in -load")
	loadMinHitRate := flag.Float64("load-min-hit-rate", 0, "fail -load if the warm batch cache hit rate is below this (0 disables)")
	loadMaxP99 := flag.Float64("load-max-p99-ms", 0, "fail -load if the warm batch p99 exceeds this many ms (0 disables)")
	loadOverload := flag.Bool("load-overload", false, "append the adaptive-overload phase to -load: a 3x mixed-tier storm gating interactive goodput, deadline enforcement, and brownout recovery")
	flag.Parse()

	if *metricsFlag {
		if err := metricsSmoke(*seed); err != nil {
			log.Fatalf("metrics smoke failed: %v", err)
		}
		return
	}

	if *jsonPath != "" {
		presets := splitCSV(*benchPresets)
		err := benchJSON(*jsonPath, presets, parseInts(*benchWorkers), *benchWarmup, *benchSweeps, *seed, *benchMinSpeedup)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		return
	}

	if *loadPath != "" {
		err := runLoad(*loadPath, loadOpts{
			seed: *seed, rate: *loadRate, requests: *loadRequests,
			distinct: *loadDistinct, zipfS: *loadZipf, chunk: *loadChunk,
			minHitRate: *loadMinHitRate, maxP99MS: *loadMaxP99,
			overload: *loadOverload,
		})
		if err != nil {
			log.Fatalf("load: %v", err)
		}
		return
	}

	var data *corpus.Dataset
	var plantedC, plantedK int
	if *dataPath != "" {
		var err error
		data, err = corpus.LoadFile(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
		plantedC, plantedK = 6, 8
	} else {
		var cfg synth.Config
		var err error
		switch *preset {
		case "small":
			cfg = synth.Small(*seed)
			data, _, err = synth.Generate(cfg)
		case "medium":
			cfg = synth.Medium(*seed)
			data, _, err = synth.Generate(cfg)
		case "large":
			cfg = synth.Large(*seed)
			data, _, err = synth.Generate(cfg)
		case "event":
			ecfg := synth.EventStream(*seed)
			cfg = ecfg.Base
			data, _, _, err = synth.GenerateEvent(ecfg)
		default:
			log.Fatalf("unknown preset %q (want small, medium, large or event)", *preset)
		}
		if err != nil {
			log.Fatal(err)
		}
		plantedC, plantedK = cfg.C, cfg.K
	}
	c, k := plantedC, plantedK
	if *comms > 0 {
		c = *comms
	}
	if *topics > 0 {
		k = *topics
	}

	sched := eval.DefaultSchedule()
	if *quickFlag {
		sched = eval.QuickSchedule()
	}
	sched.Seed = *seed

	fmt.Printf("dataset: %s\nmodel: C=%d K=%d schedule: %+v\n\n", data.Stats(), c, k, sched)

	workerCounts := parseInts(*workersFlag)
	run := runner{data: data, c: c, k: k, sched: sched, workers: workerCounts,
		seed: *seed, tsv: *format == "tsv"}

	targets := strings.Split(*fig, ",")
	if *fig == "all" {
		targets = []string{"table2", "8", "5", "6", "7", "9", "10", "11", "12", "13a", "13b", "14", "15", "16", "17", "18", "19"}
	}
	for _, t := range targets {
		run.one(strings.TrimSpace(t))
	}
}

type runner struct {
	data    *corpus.Dataset
	c, k    int
	sched   eval.Schedule
	workers []int
	seed    uint64
	tsv     bool
}

// print renders a series result in the selected format.
func (r runner) print(res *eval.Result) {
	if r.tsv {
		fmt.Printf("# %s\n%s\n", res.Name, res.RenderTSV())
		return
	}
	fmt.Println(res.Render())
}

func (r runner) one(fig string) {
	ks := sweepAround(r.k)
	cs := sweepAround(r.c)
	switch fig {
	case "5", "6", "7", "8", "16":
		r.explore(fig)
	case "9":
		r.print(eval.Fig9(r.data, r.c, ks, r.sched))
	case "10":
		r.print(eval.Fig10(r.data, r.c, r.k, r.sched))
	case "11":
		r.print(eval.Fig11(r.data, r.c, r.k, nil, r.sched))
	case "12":
		r.print(eval.Fig12(r.data, r.c, r.k, r.sched))
	case "13a":
		r.print(eval.Fig13a(r.data, r.c, r.k, nil, 4, r.sched))
	case "13b":
		r.print(eval.Fig13b(r.data, r.c, r.k, r.workers, r.sched))
	case "14":
		r.print(eval.Fig14(r.data, r.c, r.k, 4, r.sched))
	case "15":
		r.print(eval.Fig15(r.data, r.c, r.k, r.sched))
	case "17":
		r.print(eval.Fig17(r.data, cs, ks, r.sched))
	case "18":
		r.print(eval.Fig18(r.data, cs, ks, r.sched))
	case "19":
		r.print(eval.Fig19(r.data, cs, ks, r.sched))
	case "table2":
		fmt.Println(eval.Table2())
	case "sig":
		cis, err := eval.Fig10CI(r.data, r.c, r.k, r.sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(eval.RenderCIs("fig10 link-prediction AUC", cis))
	default:
		log.Printf("unknown figure %q", fig)
	}
}

// explore trains one model and renders the qualitative figures from it.
func (r runner) explore(fig string) {
	model, err := trainOnce(r)
	if err != nil {
		log.Fatal(err)
	}
	topic := eval.PickBurstyTopic(model)
	switch fig {
	case "5":
		fmt.Println(eval.Fig5(model, r.data, topic))
	case "6":
		fmt.Println(eval.Fig6(model))
	case "7":
		fmt.Println(eval.Fig7(model, topic, max(2, r.c/3)))
	case "8":
		fmt.Println(eval.Fig8(model, r.data, r.k))
	case "16":
		res, err := eval.Fig16(model, topic, 300, r.seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Println("pentagon layout (first 10 rows):")
		lines := strings.SplitN(res.PentagonTSV, "\n", 12)
		for i, l := range lines {
			if i > 10 {
				break
			}
			fmt.Println(l)
		}
	}
}

func trainOnce(r runner) (*core.Model, error) {
	cfg := core.DefaultConfig(r.c, r.k)
	cfg.Iterations = r.sched.Iterations
	cfg.BurnIn = r.sched.BurnIn
	cfg.SampleLag = r.sched.SampleLag
	cfg.Seed = r.seed
	return core.Train(r.data, cfg)
}

func sweepAround(v int) []int {
	lo := v / 2
	if lo < 2 {
		lo = 2
	}
	return []int{lo, v, v + v/2}
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if v, err := strconv.Atoi(strings.TrimSpace(part)); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
