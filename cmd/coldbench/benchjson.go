package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
)

// benchRecord is the machine-readable sampler benchmark written by
// `coldbench -json out.json`. One record per run; the repository keeps a
// trajectory of them (BENCH_0.json is the seed-kernel baseline) so every
// PR's sampler change is measured against the same workload.
type benchRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Preset        string `json:"preset"`
	Seed          uint64 `json:"seed"`

	Dataset corpus.Stats `json:"dataset"`
	C       int          `json:"communities"`
	K       int          `json:"topics"`

	Serial          core.SweepBench `json:"serial"`
	Parallel        core.SweepBench `json:"parallel"`
	ParallelSpeedup float64         `json:"parallel_speedup"`
}

// benchJSON times the serial and parallel Gibbs sweep on the given
// dataset and writes one benchRecord to path.
func benchJSON(path, preset string, data *corpus.Dataset, c, k, workers, warmup, sweeps int, seed uint64) error {
	cfg := core.DefaultConfig(c, k)
	cfg.Seed = seed

	serial, err := core.BenchSweeps(data, cfg, warmup, sweeps)
	if err != nil {
		return fmt.Errorf("serial bench: %w", err)
	}
	pcfg := cfg
	pcfg.Workers = workers
	parallel, err := core.BenchSweeps(data, pcfg, warmup, sweeps)
	if err != nil {
		return fmt.Errorf("parallel bench: %w", err)
	}

	rec := benchRecord{
		SchemaVersion:   1,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
		GitSHA:          gitSHA(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Preset:          preset,
		Seed:            seed,
		Dataset:         data.Stats(),
		C:               c,
		K:               k,
		Serial:          serial,
		Parallel:        parallel,
		ParallelSpeedup: serial.Seconds / parallel.Seconds,
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("serial:   %.0f tokens/s  %.0f posts/s  %.0f links/s  %.2f sweeps/s  %.0f allocs/sweep\n",
		serial.TokensPerSec, serial.PostsPerSec, serial.LinksPerSec, serial.SweepsPerSec, serial.AllocsPerSweep)
	fmt.Printf("parallel: %.0f tokens/s  %.0f posts/s  %.0f links/s  %.2f sweeps/s  %.0f allocs/sweep  (%d workers, %.2fx)\n",
		parallel.TokensPerSec, parallel.PostsPerSec, parallel.LinksPerSec, parallel.SweepsPerSec,
		parallel.AllocsPerSweep, workers, rec.ParallelSpeedup)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// gitSHA resolves the current commit: from the binary's embedded VCS
// stamp when present, else by asking git, else "unknown".
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	return "unknown"
}
