package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/gas"
	"github.com/cold-diffusion/cold/internal/synth"
)

// benchRecord is the machine-readable sampler benchmark written by
// `coldbench -json out.json`. One record per run; the repository keeps a
// trajectory of them (BENCH_0.json is the seed-kernel baseline) so every
// PR's sampler change is measured against the same workloads.
//
// Schema v2 replaces the single serial-vs-parallel pair of v1 with a
// worker × preset matrix: every preset is timed once serially and once
// per worker count on the parallel GAS sampler. The sampled chain is
// identical at every worker count (per-shard RNG streams), so the legs
// measure pure scheduling overhead, not statistical drift.
type benchRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Seed          uint64 `json:"seed"`

	Presets []benchPreset `json:"presets"`
}

// benchPreset is one synthetic workload's row of the matrix.
type benchPreset struct {
	Preset  string       `json:"preset"`
	Dataset corpus.Stats `json:"dataset"`
	C       int          `json:"communities"`
	K       int          `json:"topics"`

	Serial   core.SweepBench    `json:"serial"`
	Parallel []benchParallelLeg `json:"parallel"`
}

// benchParallelLeg is one worker count's measurement on one preset.
//
// WallSpeedup is serial wall time over this leg's wall time — honest but
// meaningless on a GOMAXPROCS=1 box, where all workers share one core.
// ProjectedSeconds/ProjectedSpeedup come from the 1-worker leg's
// per-shard critical-path schedule (gas.EngineStats.ProjectedSeconds):
// the shard plan and chain are identical at every worker count, and the
// 1-worker timings carry no cross-worker preemption noise, so projecting
// that schedule onto w workers is the faithful scaling estimate.
// ProjectedSpeedup is relative to the 1-worker parallel leg's own
// projection, i.e. it isolates scaling from serial-vs-parallel kernel
// differences.
type benchParallelLeg struct {
	core.SweepBench
	WallSpeedup      float64 `json:"wall_speedup"`
	ProjectedSeconds float64 `json:"projected_seconds,omitempty"`
	ProjectedSpeedup float64 `json:"projected_speedup,omitempty"`
}

// benchJSON times the serial and parallel Gibbs sweep on every preset ×
// worker combination and writes one benchRecord to path. When
// minSpeedup > 0, it fails if any preset's 4-worker projected speedup
// falls below it — the CI scaling gate.
func benchJSON(path string, presets []string, workers []int, warmup, sweeps int, seed uint64, minSpeedup float64) error {
	if len(presets) == 0 || len(workers) == 0 {
		return fmt.Errorf("need at least one preset and one worker count")
	}
	hasOne := false
	for _, w := range workers {
		if w == 1 {
			hasOne = true
		}
	}
	if !hasOne {
		return fmt.Errorf("the worker list must include 1: the 1-worker parallel leg anchors the projected-speedup schedule")
	}

	rec := benchRecord{
		SchemaVersion: 2,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          seed,
	}

	for _, preset := range presets {
		row, err := benchPresetRow(preset, workers, warmup, sweeps, seed, minSpeedup)
		if err != nil {
			return fmt.Errorf("preset %s: %w", preset, err)
		}
		rec.Presets = append(rec.Presets, row)
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func benchPresetRow(preset string, workers []int, warmup, sweeps int, seed uint64, minSpeedup float64) (benchPreset, error) {
	var scfg synth.Config
	switch preset {
	case "small":
		scfg = synth.Small(seed)
	case "medium":
		scfg = synth.Medium(seed)
	case "large":
		scfg = synth.Large(seed)
	default:
		return benchPreset{}, fmt.Errorf("unknown preset %q (want small, medium or large)", preset)
	}
	data, _, err := synth.Generate(scfg)
	if err != nil {
		return benchPreset{}, err
	}

	cfg := core.DefaultConfig(scfg.C, scfg.K)
	cfg.Seed = seed

	serial, err := core.BenchSweeps(data, cfg, warmup, sweeps)
	if err != nil {
		return benchPreset{}, fmt.Errorf("serial bench: %w", err)
	}
	fmt.Printf("%-7s serial:     %8.0f tokens/s  %.2f sweeps/s  %.0f allocs/sweep\n",
		preset, serial.TokensPerSec, serial.SweepsPerSec, serial.AllocsPerSweep)

	row := benchPreset{
		Preset:  preset,
		Dataset: data.Stats(),
		C:       scfg.C,
		K:       scfg.K,
		Serial:  serial,
	}

	// The 1-worker leg runs first so its schedule is available when the
	// other legs are reported.
	var anchor gas.EngineStats
	legs := make(map[int]benchParallelLeg, len(workers))
	order := append([]int{1}, workers...)
	for _, w := range order {
		if _, done := legs[w]; done || w < 1 {
			continue
		}
		pcfg := cfg
		pcfg.Workers = w
		bench, stats, err := core.BenchParallelSweeps(data, pcfg, warmup, sweeps)
		if err != nil {
			return benchPreset{}, fmt.Errorf("parallel bench (%d workers): %w", w, err)
		}
		if w == 1 {
			anchor = stats
		}
		legs[w] = benchParallelLeg{
			SweepBench:       bench,
			WallSpeedup:      serial.Seconds / bench.Seconds,
			ProjectedSeconds: anchor.ProjectedSeconds(w),
			ProjectedSpeedup: anchor.ProjectedSeconds(1) / anchor.ProjectedSeconds(w),
		}
	}
	for _, w := range workers {
		leg := legs[w]
		row.Parallel = append(row.Parallel, leg)
		fmt.Printf("%-7s %d worker(s): %8.0f tokens/s  %.2f sweeps/s  %.0f allocs/sweep  barrier/busy %.3f  wall %.2fx  projected %.2fx\n",
			preset, w, leg.TokensPerSec, leg.SweepsPerSec, leg.AllocsPerSweep,
			leg.BarrierBusyRatio, leg.WallSpeedup, leg.ProjectedSpeedup)
		if minSpeedup > 0 && w == 4 && leg.ProjectedSpeedup < minSpeedup {
			return benchPreset{}, fmt.Errorf("scaling gate: 4-worker projected speedup %.2fx < required %.2fx",
				leg.ProjectedSpeedup, minSpeedup)
		}
	}
	return row, nil
}

// gitSHA resolves the current commit: from the binary's embedded VCS
// stamp when present, else by asking git, else "unknown".
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	return "unknown"
}
