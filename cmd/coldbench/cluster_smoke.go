package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"github.com/cold-diffusion/cold/internal/cluster"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
)

// smokeReplica is a scriptable coldserve stand-in for the cluster
// metrics smoke: it answers the /v1 surface the router consumes and can
// be killed, failed, slowed or moved to another model generation.
type smokeReplica struct {
	srv      *httptest.Server
	down     atomic.Bool
	fail     atomic.Bool
	shed     atomic.Bool  // answer predictions with a 503 brownout verdict
	brownout atomic.Int64 // brownout ladder level reported by healthz
	delay    atomic.Int64 // nanoseconds
	key      atomic.Value // string model key
}

func newSmokeReplica(key string) *smokeReplica {
	f := &smokeReplica{}
	f.key.Store(key)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
			return
		}
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		w.Header().Set("Content-Type", "application/json")
		switch {
		case r.URL.Path == "/v1/healthz":
			json.NewEncoder(w).Encode(map[string]any{
				"status": "ok", "generation": 1, "model_key": f.key.Load().(string),
				"brownout_level": f.brownout.Load(),
			})
		case strings.HasPrefix(r.URL.Path, "/v1/predict/") || r.URL.Path == "/v1/topics":
			if f.shed.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":{"code":"brownout","message":"brownout L3: shed"}}`)
				return
			}
			if f.fail.Load() {
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprint(w, `{"error":{"code":"internal","message":"injected"}}`)
				return
			}
			json.NewEncoder(w).Encode(map[string]any{
				"score": 0.5, "generation": 1, "model_key": f.key.Load().(string),
			})
		case r.URL.Path == "/v1/score/batch":
			var body struct {
				Items []json.RawMessage `json:"items"`
			}
			json.NewDecoder(r.Body).Decode(&body)
			results := make([]json.RawMessage, len(body.Items))
			for i := range results {
				results[i] = json.RawMessage(`{"status":"ok","score":0.5}`)
			}
			json.NewEncoder(w).Encode(map[string]any{
				"results": results, "generation": 1,
				"model_key": f.key.Load().(string), "degraded": false,
			})
		case strings.HasPrefix(r.URL.Path, "/v1/rank/"):
			json.NewEncoder(w).Encode(map[string]any{
				"user": 0, "candidates": []any{}, "generation": 1,
				"model_key": f.key.Load().(string),
			})
		default:
			http.NotFound(w, r)
		}
	}))
	return f
}

// clusterSmoke drives every cold_cluster_* instrument: routed requests
// on all six routes (the four single-score routes plus the scattered
// batch and the forwarded rank), a retry onto a healthy replica, retry-budget
// exhaustion, a breaker open + shed, a winning hedge, probe failures
// with an ejection/readmission cycle, a generation-skew discard, a
// proxy error with no fallback, and a degraded fallback answer.
func clusterSmoke(reg *obs.Registry, fallback serve.Engine) error {
	cm := cluster.NewMetrics(reg)
	ctx := context.Background()

	newRouter := func(cfg cluster.Config, pools ...[]*smokeReplica) (*cluster.Router, *httptest.Server, error) {
		for _, pool := range pools {
			var urls []string
			for _, f := range pool {
				urls = append(urls, f.srv.URL)
			}
			cfg.Shards = append(cfg.Shards, urls)
		}
		if cfg.RequestTimeout == 0 {
			cfg.RequestTimeout = 5 * time.Second
		}
		cfg.RetryBase, cfg.RetryMax = time.Millisecond, 5*time.Millisecond
		cfg.ProbeEvery = time.Hour // smoke drives probes explicitly
		cfg.EjectAfter, cfg.ReadmitAfter = 2, 2
		cfg.SlowStart = time.Millisecond
		cfg.Metrics = cm
		rt, err := cluster.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		return rt, httptest.NewServer(rt.Handler()), nil
	}
	post := func(url, path, body string, want ...int) error {
		resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		for _, w := range want {
			if resp.StatusCode == w {
				return nil
			}
		}
		return fmt.Errorf("POST %s = %d, want one of %v", path, resp.StatusCode, want)
	}

	// Main fleet: four routes forwarded, then one failing replica makes
	// traffic retry onto the healthy one; kill/recover the same replica
	// through probes for the ejection/readmission cycle.
	a, b := newSmokeReplica("m@1"), newSmokeReplica("m@1")
	defer a.srv.Close()
	defer b.srv.Close()
	rt, front, err := newRouter(cluster.Config{}, []*smokeReplica{a, b})
	if err != nil {
		return err
	}
	defer front.Close()
	rt.ProbeAll(ctx)
	for _, rq := range []struct{ path, body string }{
		{"/v1/predict/retweet", `{"publisher":0,"candidate":1,"words":[1]}`},
		{"/v1/predict/link", `{"from":0,"to":1}`},
		{"/v1/predict/time", `{"user":0,"words":[1]}`},
		{"/v1/topics", `{"user":0,"words":[1]}`},
	} {
		if err := post(front.URL, rq.path, rq.body, 200); err != nil {
			return err
		}
	}
	// The batch-first routes: a scatter/gather batch and a forwarded
	// rank lookup (route labels "batch" and "rank").
	if err := post(front.URL, "/v1/score/batch",
		`{"items":[{"kind":"link","from":0,"to":1},{"kind":"time","user":1,"words":[1]}]}`, 200); err != nil {
		return fmt.Errorf("routed batch: %w", err)
	}
	rankResp, err := http.Get(front.URL + "/v1/rank/0")
	if err != nil {
		return err
	}
	rankResp.Body.Close()
	if rankResp.StatusCode != 200 {
		return fmt.Errorf("GET /v1/rank/0 = %d, want 200", rankResp.StatusCode)
	}
	a.fail.Store(true)
	for i := 0; i < 4; i++ {
		if err := post(front.URL, "/v1/predict/link", `{"from":0,"to":1}`, 200); err != nil {
			return fmt.Errorf("retry around a failing replica: %w", err)
		}
	}
	if cm.Retries.Value() == 0 {
		return fmt.Errorf("failing replica did not drive a retry")
	}
	a.fail.Store(false)
	a.down.Store(true)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx) // EjectAfter=2 → ejection
	if cm.Ejections.Value() == 0 || cm.ProbeFailures.Value() == 0 {
		return fmt.Errorf("dead replica was not ejected by probing")
	}
	a.down.Store(false)
	rt.ProbeAll(ctx)
	rt.ProbeAll(ctx) // ReadmitAfter=2 → readmission
	if cm.Readmissions.Value() == 0 {
		return fmt.Errorf("recovered replica was not readmitted")
	}

	// Hedge: one slow replica, one fast; the hedge beats the stalled
	// primary on whichever request round-robin lands on the slow one.
	slow, fast := newSmokeReplica("m@1"), newSmokeReplica("m@1")
	defer slow.srv.Close()
	defer fast.srv.Close()
	slow.delay.Store(int64(200 * time.Millisecond))
	hrt, hfront, err := newRouter(cluster.Config{HedgeAfter: 10 * time.Millisecond},
		[]*smokeReplica{slow, fast})
	if err != nil {
		return err
	}
	defer hfront.Close()
	hrt.ProbeAll(ctx)
	for i := 0; i < 4 && cm.HedgeWins.Value() == 0; i++ {
		if err := post(hfront.URL, "/v1/predict/time", `{"user":0,"words":[1]}`, 200); err != nil {
			return err
		}
	}
	if cm.Hedges.Value() == 0 || cm.HedgeWins.Value() == 0 {
		return fmt.Errorf("slow replica was never hedged around (hedges=%v wins=%v)",
			cm.Hedges.Value(), cm.HedgeWins.Value())
	}

	// Budget exhaustion: a one-token budget under total failure refuses
	// the second retry.
	ba, bb := newSmokeReplica("m@1"), newSmokeReplica("m@1")
	defer ba.srv.Close()
	defer bb.srv.Close()
	ba.fail.Store(true)
	bb.fail.Store(true)
	brt, bfront, err := newRouter(cluster.Config{BudgetBurst: 1, BudgetRatio: 0.001,
		BreakerFailures: 1000}, []*smokeReplica{ba, bb})
	if err != nil {
		return err
	}
	defer bfront.Close()
	brt.ProbeAll(ctx)
	for i := 0; i < 4; i++ {
		post(bfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 502, 503)
	}
	if cm.BudgetExhausted.Value() == 0 {
		return fmt.Errorf("one-token budget never reported exhaustion under total failure")
	}

	// Breaker + proxy errors + skew: probe a healthy fleet, then flip
	// both replicas to a new generation without re-probing — responses
	// mismatch the pinned key and are discarded (skew). Then kill both:
	// whole-request failures open the one-failure breaker, the next
	// request sheds, and with no fallback both paths count proxy errors.
	sa, sb := newSmokeReplica("m@1"), newSmokeReplica("m@1")
	defer sa.srv.Close()
	defer sb.srv.Close()
	srt, sfront, err := newRouter(cluster.Config{BreakerFailures: 1,
		BreakerCooldown: time.Minute}, []*smokeReplica{sa, sb})
	if err != nil {
		return err
	}
	defer sfront.Close()
	srt.ProbeAll(ctx)
	sa.key.Store("m@2")
	sb.key.Store("m@2")
	post(sfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 502, 503)
	if cm.SkewDiscards.Value() == 0 {
		return fmt.Errorf("post-probe generation flip did not trigger a skew discard")
	}
	sa.down.Store(true)
	sb.down.Store(true)
	post(sfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 502, 503)
	if err := post(sfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 503); err != nil {
		return fmt.Errorf("open breaker did not shed: %w", err)
	}
	if cm.BreakerOpens.Value() == 0 || cm.BreakerShed.Value() == 0 {
		return fmt.Errorf("breaker never opened/shed under total shard death (opens=%v shed=%v)",
			cm.BreakerOpens.Value(), cm.BreakerShed.Value())
	}
	if cm.ProxyErrors.Value() == 0 {
		return fmt.Errorf("exhausted shard with no fallback did not count a proxy error")
	}

	// Pressure relay: a browned-out fleet answers its deliberate 503
	// verdict fast, and the router relays it without retrying into the
	// heat — breaker-neutral, counted as a pressure relay, and the
	// probed brownout level marks the replicas hot in the fleet gauges.
	pa, pb := newSmokeReplica("m@1"), newSmokeReplica("m@1")
	defer pa.srv.Close()
	defer pb.srv.Close()
	for _, rep := range []*smokeReplica{pa, pb} {
		rep.shed.Store(true)
		rep.brownout.Store(3)
	}
	prt, pfront, err := newRouter(cluster.Config{}, []*smokeReplica{pa, pb})
	if err != nil {
		return err
	}
	defer pfront.Close()
	prt.ProbeAll(ctx)
	if err := post(pfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 503); err != nil {
		return fmt.Errorf("brownout verdict relay: %w", err)
	}
	if cm.PressureRelays.Value() == 0 {
		return fmt.Errorf("brownout 503 was not counted as a pressure relay")
	}
	if cm.ReplicasHot.Value() == 0 {
		return fmt.Errorf("probed brownout L3 replicas were not marked hot")
	}

	// Degraded fallback: a dead shard with the popularity prior armed
	// answers 200, honestly marked.
	da := newSmokeReplica("m@1")
	defer da.srv.Close()
	da.down.Store(true)
	drt, dfront, err := newRouter(cluster.Config{Fallback: fallback}, []*smokeReplica{da})
	if err != nil {
		return err
	}
	defer dfront.Close()
	drt.ProbeAll(ctx)
	if err := post(dfront.URL, "/v1/predict/link", `{"from":0,"to":1}`, 200); err != nil {
		return fmt.Errorf("degraded fallback answer: %w", err)
	}
	if cm.DegradedAnswers.Value() == 0 {
		return fmt.Errorf("fallback answer was not counted as degraded")
	}
	return nil
}
