package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
	"github.com/cold-diffusion/cold/internal/synth"
)

// loadOpts are the knobs of `coldbench -load`.
type loadOpts struct {
	seed       uint64
	rate       float64 // offered single-score requests per second
	requests   int     // scored items per phase per mode
	distinct   int     // distinct request tuples the Zipf stream draws from
	zipfS      float64 // Zipf skew; hotter heads cache better
	chunk      int     // items per /v1/score/batch round-trip
	minHitRate float64 // assert: batch-mode warm cache hit rate floor (0 = off)
	maxP99MS   float64 // assert: batch-mode warm p99 ceiling in ms (0 = off)
	overload   bool    // run the adaptive-overload phase and gate its invariants
}

// loadPhase is one measured phase of one serving mode.
type loadPhase struct {
	Requests       int     `json:"requests"`
	WallSeconds    float64 `json:"wall_seconds"`
	ThroughputPerS float64 `json:"throughput_per_sec"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	Errors         int     `json:"errors"`
}

// loadMode is one serving configuration driven cold then warm with the
// identical request stream.
type loadMode struct {
	Cold loadPhase `json:"cold"`
	Warm loadPhase `json:"warm"`
}

// loadRecord is the machine-readable serving benchmark written by
// `coldbench -load out.json` (BENCH_2.json in the repository): the
// one-call-per-score baseline against the batch-first hot path at the
// same offered load, each measured cold (empty cache) and warm.
type loadRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	GitSHA        string `json:"git_sha"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Seed          uint64 `json:"seed"`

	Users        int     `json:"users"`
	Posts        int     `json:"posts"`
	OfferedRate  float64 `json:"offered_rate_per_sec"`
	DistinctKeys int     `json:"distinct_keys"`
	ZipfS        float64 `json:"zipf_s"`
	Chunk        int     `json:"batch_chunk"`

	// SingleCall serves with micro-batching and the score cache disabled
	// and is driven one POST /v1/predict/retweet per score — the shape of
	// the hot path before the batch-first redesign.
	SingleCall loadMode `json:"single_call"`
	// Batch serves with the redesign's defaults (micro-batcher + score
	// cache + top-k precompute) and is driven through /v1/score/batch.
	Batch loadMode `json:"batch"`

	BatchWarmP99Speedup        float64 `json:"batch_warm_p99_speedup"`
	BatchWarmThroughputSpeedup float64 `json:"batch_warm_throughput_speedup"`

	// Overload is the adaptive-admission storm trajectory (per-tier
	// goodput under 3x mixed load, brownout peak and recovery), present
	// when -load-overload is set. Schema version 2 added this section.
	Overload *overloadRecord `json:"overload,omitempty"`
}

// runLoad trains a small model once, serves it twice — the pre-redesign
// single-call shape and the batch-first shape — and drives both with
// the same open-loop Zipf request stream, writing one loadRecord.
func runLoad(path string, opts loadOpts) error {
	if opts.rate <= 0 {
		opts.rate = 3000
	}
	if opts.requests <= 0 {
		opts.requests = 4000
	}
	if opts.distinct <= 0 {
		opts.distinct = 2000
	}
	if opts.zipfS <= 1 {
		opts.zipfS = 1.4
	}
	if opts.chunk <= 0 {
		opts.chunk = 32
	}

	cfg := synth.Small(opts.seed)
	data, _, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	tcfg := core.DefaultConfig(cfg.C, cfg.K)
	tcfg.Iterations, tcfg.BurnIn, tcfg.SampleLag = 30, 10, 5
	tcfg.Seed = opts.seed
	model, err := core.Train(data, tcfg)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "coldload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.json")
	if err := model.SaveFile(modelPath); err != nil {
		return err
	}

	// The identical request stream drives every phase of both modes:
	// Zipf-ranked draws from a fixed pool of distinct retweet tuples.
	rng := rand.New(rand.NewSource(int64(opts.seed)))
	zipf := rand.NewZipf(rng, opts.zipfS, 1, uint64(opts.distinct-1))
	type tuple struct{ pub, cand, post int }
	pool := make([]tuple, opts.distinct)
	for i := range pool {
		pool[i] = tuple{rng.Intn(model.U), rng.Intn(model.U), rng.Intn(len(data.Posts))}
	}
	seq := make([]tuple, opts.requests)
	for i := range seq {
		seq[i] = pool[zipf.Uint64()]
	}
	bodies := make([][]byte, len(seq))
	for i, tp := range seq {
		bodies[i], _ = json.Marshal(map[string]int{
			"publisher": tp.pub, "candidate": tp.cand, "post": tp.post})
	}
	chunks := make([][]byte, 0, (len(seq)+opts.chunk-1)/opts.chunk)
	chunkItems := make([]int, 0, cap(chunks))
	for at := 0; at < len(seq); at += opts.chunk {
		end := min(at+opts.chunk, len(seq))
		items := make([]map[string]int, 0, end-at)
		for _, tp := range seq[at:end] {
			items = append(items, map[string]int{
				"publisher": tp.pub, "candidate": tp.cand, "post": tp.post})
		}
		b, _ := json.Marshal(map[string]any{"items": withKind(items)})
		chunks = append(chunks, b)
		chunkItems = append(chunkItems, end-at)
	}

	rec := loadRecord{
		SchemaVersion: 2,
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          opts.seed,
		Users:         model.U,
		Posts:         len(data.Posts),
		OfferedRate:   opts.rate,
		DistinctKeys:  opts.distinct,
		ZipfS:         opts.zipfS,
		Chunk:         opts.chunk,
	}

	rec.SingleCall, err = serveAndDrive(modelPath, data, serve.Config{
		MaxInFlight: 1024, RequestTimeout: 10 * time.Second,
		BatchWindow: -1, CacheEntries: -1, // pre-redesign hot path
	}, func(base string, mt *serve.Metrics) (loadPhase, loadPhase, error) {
		cold, err := driveSingles(base, bodies, opts.rate, mt)
		if err != nil {
			return cold, cold, err
		}
		warm, err := driveSingles(base, bodies, opts.rate, mt)
		return cold, warm, err
	})
	if err != nil {
		return fmt.Errorf("single-call mode: %w", err)
	}

	rec.Batch, err = serveAndDrive(modelPath, data, serve.Config{
		MaxInFlight: 1024, RequestTimeout: 10 * time.Second,
	}, func(base string, mt *serve.Metrics) (loadPhase, loadPhase, error) {
		cold, err := driveChunks(base, chunks, chunkItems, opts.rate, mt)
		if err != nil {
			return cold, cold, err
		}
		warm, err := driveChunks(base, chunks, chunkItems, opts.rate, mt)
		return cold, warm, err
	})
	if err != nil {
		return fmt.Errorf("batch mode: %w", err)
	}

	// The overload phase runs last (it deliberately saturates the box)
	// and its gate failures are reported after the record is written, so
	// a tripped gate still leaves the trajectory on disk to diagnose.
	var overloadErr error
	if opts.overload {
		fmt.Println("overload: 3x mixed-tier storm against the adaptive admission stack...")
		rec.Overload, overloadErr = runOverloadPhase(modelPath, data, 0.9)
	}

	if rec.Batch.Warm.P99MS > 0 {
		rec.BatchWarmP99Speedup = rec.SingleCall.Warm.P99MS / rec.Batch.Warm.P99MS
	}
	if rec.SingleCall.Warm.ThroughputPerS > 0 {
		rec.BatchWarmThroughputSpeedup = rec.Batch.Warm.ThroughputPerS / rec.SingleCall.Warm.ThroughputPerS
	}

	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}

	fmt.Printf("single: cold p50=%.2fms p99=%.2fms %.0f/s | warm p50=%.2fms p99=%.2fms %.0f/s\n",
		rec.SingleCall.Cold.P50MS, rec.SingleCall.Cold.P99MS, rec.SingleCall.Cold.ThroughputPerS,
		rec.SingleCall.Warm.P50MS, rec.SingleCall.Warm.P99MS, rec.SingleCall.Warm.ThroughputPerS)
	fmt.Printf("batch:  cold p50=%.2fms p99=%.2fms %.0f/s hit=%.0f%% | warm p50=%.2fms p99=%.2fms %.0f/s hit=%.0f%%\n",
		rec.Batch.Cold.P50MS, rec.Batch.Cold.P99MS, rec.Batch.Cold.ThroughputPerS, 100*rec.Batch.Cold.CacheHitRate,
		rec.Batch.Warm.P50MS, rec.Batch.Warm.P99MS, rec.Batch.Warm.ThroughputPerS, 100*rec.Batch.Warm.CacheHitRate)
	if o := rec.Overload; o != nil {
		fmt.Printf("overload: interactive goodput %.3f under storm vs %.3f baseline (ratio %.2f) | peak=L%d recovered=%v limit=%d/%d\n",
			o.Storm["interactive"].Goodput, o.Baseline["interactive"].Goodput,
			o.InteractiveRatio, o.PeakBrownoutLevel, o.RecoveredToL0,
			o.LimitAfterRecovery, o.Ceiling)
	}
	fmt.Printf("wrote %s\n", path)

	if opts.minHitRate > 0 && rec.Batch.Warm.CacheHitRate < opts.minHitRate {
		return fmt.Errorf("warm cache hit rate %.3f below floor %.3f",
			rec.Batch.Warm.CacheHitRate, opts.minHitRate)
	}
	if opts.maxP99MS > 0 && rec.Batch.Warm.P99MS > opts.maxP99MS {
		return fmt.Errorf("warm batch p99 %.2fms above ceiling %.2fms",
			rec.Batch.Warm.P99MS, opts.maxP99MS)
	}
	errs := rec.SingleCall.Cold.Errors + rec.SingleCall.Warm.Errors +
		rec.Batch.Cold.Errors + rec.Batch.Warm.Errors
	if errs > 0 {
		return fmt.Errorf("%d load requests failed", errs)
	}
	if overloadErr != nil {
		return fmt.Errorf("overload phase: %w", overloadErr)
	}
	return nil
}

// withKind stamps the retweet kind on each batch item.
func withKind(items []map[string]int) []map[string]any {
	out := make([]map[string]any, len(items))
	for i, it := range items {
		m := map[string]any{"kind": "retweet"}
		for k, v := range it {
			m[k] = v
		}
		out[i] = m
	}
	return out
}

// serveAndDrive stands up one server over the trained model, runs the
// driver against it, and tears it down.
func serveAndDrive(modelPath string, data *corpus.Dataset, scfg serve.Config,
	drive func(base string, mt *serve.Metrics) (loadPhase, loadPhase, error)) (loadMode, error) {
	reg := obs.NewRegistry()
	mt := serve.NewMetrics(reg)
	scfg.Metrics = mt
	quiet := func(string, ...any) {}
	mgr := serve.NewManager(serve.ManagerConfig{
		Path: modelPath, TopComm: 5, RankK: 50, Logf: quiet, Metrics: mt,
	})
	if err := mgr.Reload(); err != nil {
		return loadMode{}, err
	}
	srv := serve.New(scfg, mgr, data)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadMode{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	cold, warm, err := drive("http://"+ln.Addr().String(), mt)
	return loadMode{Cold: cold, Warm: warm}, err
}

// loadClient is tuned for many concurrent connections to one host.
var loadClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns: 1024, MaxIdleConnsPerHost: 1024,
}}

// driveOpenLoop paces len(bodies) posts to url at interval, open-loop:
// requests launch on schedule whether or not earlier ones returned, so
// server slowness shows up as queueing latency, not a gentler load.
// In-flight concurrency is capped generously to bound memory. check
// inspects each response (status 0 and nil body on transport failure)
// and returns how many scored items in it failed.
func driveOpenLoop(url string, bodies [][]byte, interval time.Duration,
	check func(i, status int, body []byte) int) ([]float64, int, time.Duration) {
	lat := make([]float64, len(bodies))
	var errs atomic.Int64
	sem := make(chan struct{}, 1024)
	var wg sync.WaitGroup
	start := time.Now()
	for i, body := range bodies {
		if sleep := start.Add(time.Duration(i) * interval).Sub(time.Now()); sleep > 0 {
			time.Sleep(sleep)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			resp, err := loadClient.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				errs.Add(int64(check(i, 0, nil)))
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lat[i] = time.Since(t0).Seconds() * 1000
			errs.Add(int64(check(i, resp.StatusCode, raw)))
		}(i, body)
	}
	wg.Wait()
	return lat, int(errs.Load()), time.Since(start)
}

// phaseStats folds one phase's measurements plus the cache-counter
// delta into a loadPhase.
func phaseStats(lat []float64, errs, items int, wall time.Duration, hits0, miss0, hits1, miss1 uint64) loadPhase {
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	ph := loadPhase{
		Requests:       items,
		WallSeconds:    wall.Seconds(),
		ThroughputPerS: float64(items) / wall.Seconds(),
		P50MS:          pct(0.50),
		P99MS:          pct(0.99),
		Errors:         errs,
	}
	if dh, dm := hits1-hits0, miss1-miss0; dh+dm > 0 {
		ph.CacheHitRate = float64(dh) / float64(dh+dm)
	}
	return ph
}

// driveSingles runs one phase of one-call-per-score traffic.
func driveSingles(base string, bodies [][]byte, rate float64, mt *serve.Metrics) (loadPhase, error) {
	h0, m0 := mt.CacheHits.Value(), mt.CacheMisses.Value()
	interval := time.Duration(float64(time.Second) / rate)
	lat, errs, wall := driveOpenLoop(base+"/v1/predict/retweet", bodies, interval,
		func(_, status int, _ []byte) int {
			if status != http.StatusOK {
				return 1
			}
			return 0
		})
	h1, m1 := mt.CacheHits.Value(), mt.CacheMisses.Value()
	return phaseStats(lat, errs, len(bodies), wall, h0, m0, h1, m1), nil
}

// driveChunks runs one phase of batched traffic: the same offered item
// rate, arriving as one /v1/score/batch round-trip per chunk. A chunk
// answers 200 even when items inside it failed, so the per-item status
// slots are what gets counted.
func driveChunks(base string, chunks [][]byte, chunkItems []int, rate float64, mt *serve.Metrics) (loadPhase, error) {
	items := 0
	for _, n := range chunkItems {
		items += n
	}
	h0, m0 := mt.CacheHits.Value(), mt.CacheMisses.Value()
	perChunk := (items + len(chunks) - 1) / len(chunks)
	interval := time.Duration(float64(perChunk) * float64(time.Second) / rate)
	lat, errs, wall := driveOpenLoop(base+"/v1/score/batch", chunks, interval,
		func(i, status int, body []byte) int {
			if status != http.StatusOK {
				return chunkItems[i]
			}
			var rep struct {
				Results []struct {
					Status string `json:"status"`
				} `json:"results"`
			}
			if err := json.Unmarshal(body, &rep); err != nil || len(rep.Results) != chunkItems[i] {
				return chunkItems[i]
			}
			bad := 0
			for _, r := range rep.Results {
				if r.Status != "ok" {
					bad++
				}
			}
			return bad
		})
	h1, m1 := mt.CacheHits.Value(), mt.CacheMisses.Value()
	return phaseStats(lat, errs, items, wall, h0, m0, h1, m1), nil
}
