// Command coldrouter is the fault-tolerant routing tier in front of a
// sharded coldserve fleet. Users are assigned to shards by a stable
// hash of their index; each shard is a pool of replicas that the router
// health-probes, retries across, hedges between, and circuit-breaks
// around, so one slow or dead replica degrades tail latency instead of
// availability.
//
// Usage:
//
//	coldrouter -shards "http://127.0.0.1:8081,http://127.0.0.1:8082|http://127.0.0.1:8083" \
//	    -addr :8080 -data dataset.json
//
// The -shards flag is '|'-separated shards, each a comma-separated
// replica pool; shard i in this list must be the coldserve processes
// started with -shard-index i. With -data set, the router answers from
// the degraded popularity prior (marked "degraded": true) when a whole
// shard is unreachable, instead of failing the request.
//
// Endpoints (the forwarded /v1 prediction surface plus the router's
// own):
//
//	POST /v1/predict/retweet    forwarded to the candidate's shard
//	POST /v1/predict/link       forwarded to the source user's shard
//	POST /v1/predict/time       forwarded to the user's shard
//	POST /v1/topics             forwarded to the user's shard
//	GET  /v1/cluster/status     shard map, breaker states, replica health
//	GET  /v1/healthz            router process liveness
//	GET  /metrics               Prometheus text exposition (alias /v1/metrics)
//
// Every non-2xx response body is the shared JSON error envelope.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/cold-diffusion/cold/internal/cluster"
	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/serve"
	"github.com/cold-diffusion/cold/internal/text"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("coldrouter: ")

	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "backend topology: '|'-separated shards, each a comma-separated replica URL pool (required)")
	dataPath := flag.String("data", "", "dataset for the degraded-mode fallback when a whole shard is down (optional)")
	timeout := flag.Duration("timeout", 2*time.Second, "end-to-end routed request deadline, retries and hedges included")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "single forwarded attempt deadline (0: half the request deadline)")
	maxAttempts := flag.Int("max-attempts", 3, "forward attempts per request, first try included")
	budgetBurst := flag.Int("retry-budget", 10, "retry budget burst: banked extra-attempt tokens")
	budgetRatio := flag.Float64("retry-ratio", 0.1, "retry budget earn rate: tokens earned per routed request")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch a tail-latency hedge to a second replica after this delay (0: off)")
	probeEvery := flag.Duration("probe-every", time.Second, "active health-probe interval (jittered)")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures that eject a replica")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes that readmit an ejected replica")
	slowStart := flag.Duration("slow-start", 3*time.Second, "readmitted-replica traffic ramp window")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive whole-request failures that open a shard's breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker shed window (jittered)")
	seed := flag.Int64("seed", 0, "jitter RNG seed for reproducible runs (0: default)")
	debugAddr := flag.String("debug-addr", "", "optional operator listener for pprof + expvar + /metrics (keep private)")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	if *shards == "" {
		log.Fatal("-shards is required, e.g. -shards \"http://h1:8081,http://h2:8081|http://h3:8081\"")
	}
	topology := parseShards(*shards)

	logger := obs.NewLogger(os.Stderr, *logFormat, obs.ParseLevel(*logLevel))
	logf := obs.Printf(logger.With("component", "cluster"))

	reg := obs.NewRegistry()
	metrics := cluster.NewMetrics(reg)

	cfg := cluster.Config{
		Shards:          topology,
		RequestTimeout:  *timeout,
		AttemptTimeout:  *attemptTimeout,
		MaxAttempts:     *maxAttempts,
		BudgetBurst:     *budgetBurst,
		BudgetRatio:     *budgetRatio,
		HedgeAfter:      *hedgeAfter,
		ProbeEvery:      *probeEvery,
		EjectAfter:      *ejectAfter,
		ReadmitAfter:    *readmitAfter,
		SlowStart:       *slowStart,
		BreakerFailures: *breakerFailures,
		BreakerCooldown: *breakerCooldown,
		Seed:            *seed,
		Logf:            logf,
		Metrics:         metrics,
	}

	if *dataPath != "" {
		data, err := corpus.LoadFile(*dataPath)
		if err != nil {
			log.Fatalf("load dataset: %v", err)
		}
		fb, err := core.NewFallbackPredictor(data)
		if err != nil {
			log.Fatalf("fallback construction: %v", err)
		}
		cfg.Fallback = serve.NewFallbackEngine(fb)
		cfg.Posts = func(post int) (text.BagOfWords, bool) {
			if post < 0 || post >= len(data.Posts) {
				return text.BagOfWords{}, false
			}
			return data.Posts[post].Words, true
		}
		logger.Info("degraded fallback armed", "data", *dataPath)
	}

	rt, err := cluster.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	rt.StartProbes(ctx)

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		logger.Info("debug listener up (pprof, expvar, metrics)", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, obs.DebugMux(reg)); err != nil {
				logger.Warn("debug listener stopped", "error", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("routing", "addr", ln.Addr().String(), "shards", len(topology))
	if err := rt.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	logger.Info("shut down cleanly")
}

// parseShards splits "a,b|c,d" into [[a b] [c d]], trimming whitespace
// and dropping empty entries so trailing separators are forgiven.
func parseShards(spec string) [][]string {
	var out [][]string
	for _, shard := range strings.Split(spec, "|") {
		var pool []string
		for _, u := range strings.Split(shard, ",") {
			if u = strings.TrimSpace(u); u != "" {
				pool = append(pool, u)
			}
		}
		if len(pool) > 0 {
			out = append(out, pool)
		}
	}
	return out
}
