// Command coldexplore renders the qualitative analyses of a trained
// model: the community-level diffusion map of a topic (Fig 5), the topic
// word clouds (Fig 8), and the influential-community pentagon (Fig 16).
//
// Usage:
//
//	coldexplore -what topics                 # synthesize + train + word clouds
//	coldexplore -what diffusion -topic 3
//	coldexplore -what influence -model model.json -data dataset.json
//	coldexplore -what patterns               # figs 6 and 7
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/eval"
	"github.com/cold-diffusion/cold/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldexplore: ")

	what := flag.String("what", "diffusion", "analysis: diffusion, topics, influence or patterns")
	dataPath := flag.String("data", "", "dataset JSON (default: synthesize the small preset)")
	modelPath := flag.String("model", "", "model JSON (default: train in-process)")
	topicFlag := flag.Int("topic", -1, "topic index (default: the burstiest topic)")
	comms := flag.Int("comms", 6, "communities C when training in-process")
	topics := flag.Int("topics", 8, "topics K when training in-process")
	iters := flag.Int("iters", 40, "Gibbs sweeps when training in-process")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	var data *corpus.Dataset
	var err error
	if *dataPath != "" {
		data, err = corpus.LoadFile(*dataPath)
	} else {
		data, _, err = synth.Generate(synth.Small(*seed))
	}
	if err != nil {
		log.Fatal(err)
	}

	var model *core.Model
	if *modelPath != "" {
		model, err = core.LoadModelFile(*modelPath)
	} else {
		cfg := core.DefaultConfig(*comms, *topics)
		cfg.Iterations = *iters
		cfg.BurnIn = *iters * 5 / 8
		cfg.Seed = *seed
		model, err = core.Train(data, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	topic := *topicFlag
	if topic < 0 || topic >= model.Cfg.K {
		topic = eval.PickBurstyTopic(model)
	}

	switch *what {
	case "diffusion":
		fmt.Println(eval.Fig5(model, data, topic))
	case "topics":
		fmt.Println(eval.Fig8(model, data, model.Cfg.K))
	case "influence":
		res, err := eval.Fig16(model, topic, 300, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Println(res.PentagonTSV)
	case "patterns":
		fmt.Println(eval.Fig6(model))
		fmt.Println(eval.Fig7(model, topic, 2))
	default:
		log.Fatalf("unknown analysis %q", *what)
	}
}
