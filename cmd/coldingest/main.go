// Command coldingest builds a COLD dataset from a JSONL stream of raw
// social records, applying the paper's preprocessing (stop-word removal,
// low-activity user filtering, vocabulary pruning, time discretisation).
//
// Input: one JSON object per line, dispatched on "type":
//
//	{"type":"post","user":"alice","time":1697040000,"text":"..."}     → returns post index by order of appearance
//	{"type":"link","from":"alice","to":"bob"}
//	{"type":"retweet","post":0,"retweeters":["bob"],"ignorers":["eve"]}
//
// Usage:
//
//	coldingest -in stream.jsonl -slices 24 -minposts 20 -minwords 2 -out dataset.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"github.com/cold-diffusion/cold/internal/corpus"
)

type record struct {
	Type string `json:"type"`

	// post fields
	User string `json:"user"`
	Time int64  `json:"time"`
	Text string `json:"text"`

	// link fields
	From string `json:"from"`
	To   string `json:"to"`

	// retweet fields
	Post       int      `json:"post"`
	Retweeters []string `json:"retweeters"`
	Ignorers   []string `json:"ignorers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldingest: ")

	in := flag.String("in", "-", "input JSONL path ('-' for stdin)")
	out := flag.String("out", "dataset.json", "output dataset path")
	slices := flag.Int("slices", 24, "number of time slices")
	minPosts := flag.Int("minposts", 1, "drop users with fewer posts")
	minWords := flag.Int("minwords", 1, "prune words occurring fewer times")
	stem := flag.Bool("stem", false, "apply Porter stemming to tokens")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	b := corpus.NewBuilder()
	b.TimeSlices = *slices
	b.MinPostsPerUser = *minPosts
	b.MinWordCount = *minWords
	b.Stemming = *stem

	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			log.Fatalf("line %d: %v", lineNo, err)
		}
		switch rec.Type {
		case "post":
			b.AddPost(rec.User, rec.Time, rec.Text)
		case "link":
			b.AddLink(rec.From, rec.To)
		case "retweet":
			if err := b.AddRetweet(rec.Post, rec.Retweeters, rec.Ignorers); err != nil {
				log.Fatalf("line %d: %v", lineNo, err)
			}
		default:
			log.Fatalf("line %d: unknown record type %q", lineNo, rec.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}

	data, names, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := data.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s (%d named users)\n", *out, data.Stats(), len(names))
}
