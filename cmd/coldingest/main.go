// Command coldingest feeds the COLD pipeline, in one of two modes.
//
// # Batch mode (default)
//
// Builds a COLD dataset from a JSONL stream of raw social records,
// applying the paper's preprocessing (stop-word removal, low-activity
// user filtering, vocabulary pruning, time discretisation):
//
//	{"type":"post","user":"alice","time":1697040000,"text":"..."}     → returns post index by order of appearance
//	{"type":"link","from":"alice","to":"bob"}
//	{"type":"retweet","post":0,"retweeters":["bob"],"ignorers":["eve"]}
//
//	coldingest -in stream.jsonl -slices 24 -minposts 20 -minwords 2 -out dataset.json
//
// Malformed lines — bad JSON, unknown record types, retweets referencing
// an out-of-range post index or a user with no prior activity — are
// reported to stderr with their line number, counted, and skipped, so
// one bad row cannot abort (or silently skew) a batch build. The exit
// status is non-zero when nothing was ingested.
//
// # Daemon mode (-daemon)
//
// Runs the durable streaming firehose: records POSTed to /v1/ingest are
// validated against the base model, appended to a checksummed
// write-ahead log (the 200 response means the record is fsync-durable),
// and periodically folded into the model as new-user membership rows;
// each fold publishes a fresh model artefact for a serving coldserve to
// hot-reload. A crash or kill -9 loses nothing acknowledged: on restart
// the newest valid state checkpoint is restored and the WAL replayed
// past its watermark, bit-identically to an uninterrupted run.
//
//	coldingest -daemon -model model.gob -wal-dir wal/ -publish live/model.gob -addr :8081
//
// Endpoints (versioned under /v1, same error envelope as coldserve):
//
//	POST /v1/ingest         {"user","slice","words":{"IDs":[...],"Counts":[...]}}
//	GET  /v1/ingest/status  watermarks, queue depth, published generations
//	GET  /v1/healthz        process liveness
//	GET  /metrics           Prometheus text exposition (alias /v1/metrics)
//
// SIGTERM/SIGINT triggers a drain mirroring coldserve: stop accepting,
// fold everything queued, emit a final state checkpoint and model
// generation, sync and close the WAL, exit 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/ingest"
	"github.com/cold-diffusion/cold/internal/obs"
)

type record struct {
	Type string `json:"type"`

	// post fields
	User string `json:"user"`
	Time int64  `json:"time"`
	Text string `json:"text"`

	// link fields
	From string `json:"from"`
	To   string `json:"to"`

	// retweet fields
	Post       int      `json:"post"`
	Retweeters []string `json:"retweeters"`
	Ignorers   []string `json:"ignorers"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldingest: ")

	// Batch flags.
	in := flag.String("in", "-", "batch: input JSONL path ('-' for stdin)")
	out := flag.String("out", "dataset.json", "batch: output dataset path")
	slices := flag.Int("slices", 24, "batch: number of time slices")
	minPosts := flag.Int("minposts", 1, "batch: drop users with fewer posts")
	minWords := flag.Int("minwords", 1, "batch: prune words occurring fewer times")
	stem := flag.Bool("stem", false, "batch: apply Porter stemming to tokens")

	// Daemon flags.
	daemon := flag.Bool("daemon", false, "run the durable streaming firehose instead of a batch build")
	addr := flag.String("addr", ":8081", "daemon: listen address")
	modelPath := flag.String("model", "", "daemon: trained base model (.json or .gob) streamed users fold into")
	walDir := flag.String("wal-dir", "wal", "daemon: write-ahead log directory (state checkpoints land under <wal-dir>/state)")
	publish := flag.String("publish", "", "daemon: model artefact re-published after each fold (.json or .gob), e.g. coldserve's watch directory")
	foldEvery := flag.Duration("fold-every", 2*time.Second, "daemon: micro-batch fold interval")
	shedPolicy := flag.String("shed-policy", "shed", "daemon: full-queue behaviour: shed (429 + Retry-After) or block")
	queueCap := flag.Int("queue-cap", 1024, "daemon: records accepted but not yet folded in")
	retryAfter := flag.Duration("retry-after", time.Second, "daemon: Retry-After hint on shed submissions")
	sweeps := flag.Int("sweeps", 20, "daemon: fold-in Gibbs sweeps per record")
	window := flag.Int("window", 64, "daemon: per-user post window membership rows derive from")
	segBytes := flag.Int64("segment-bytes", 4<<20, "daemon: WAL segment rotation threshold")
	syncEvery := flag.Int("sync-every", 1, "daemon: fsync after every Nth record (1 = every acknowledged record is durable)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "daemon: grace period for queue flush on shutdown")
	brownoutProbe := flag.String("brownout-probe", "", "daemon: coldserve /v1/healthz URL to poll; folds defer while it reports brownout L3+")
	brownoutEvery := flag.Duration("brownout-every", time.Second, "daemon: brownout probe interval")
	logFormat := flag.String("log-format", "text", "daemon: log format: text or json")
	logLevel := flag.String("log-level", "info", "daemon: log level: debug, info, warn, error")
	flag.Parse()

	if *daemon {
		os.Exit(runDaemon(daemonConfig{
			addr: *addr, modelPath: *modelPath, walDir: *walDir, publish: *publish,
			foldEvery: *foldEvery, shedPolicy: *shedPolicy, queueCap: *queueCap,
			retryAfter: *retryAfter, sweeps: *sweeps, window: *window,
			segBytes: *segBytes, syncEvery: *syncEvery, drainTimeout: *drainTimeout,
			brownoutProbe: *brownoutProbe, brownoutEvery: *brownoutEvery,
			logFormat: *logFormat, logLevel: *logLevel,
		}))
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}

	b := corpus.NewBuilder()
	b.TimeSlices = *slices
	b.MinPostsPerUser = *minPosts
	b.MinWordCount = *minWords
	b.Stemming = *stem

	handled, skipped := runBatch(b, r)
	if handled == 0 {
		if skipped > 0 {
			log.Fatalf("all %d lines were malformed; nothing ingested", skipped)
		}
		log.Fatal("empty input; nothing ingested")
	}

	data, names, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := data.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s (%d named users)\n", *out, data.Stats(), len(names))
}

// runBatch streams records into the builder with strict-skip semantics:
// every malformed line is reported with its line number and skipped, and
// the counts come back for the exit-status decision.
func runBatch(b *corpus.Builder, r io.Reader) (handled, skipped int) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	var firstBad []int
	skip := func(format string, args ...any) {
		skipped++
		if len(firstBad) < 5 {
			firstBad = append(firstBad, lineNo)
		}
		log.Printf("line %d: skipped: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			skip("%v", err)
			continue
		}
		switch rec.Type {
		case "post":
			b.AddPost(rec.User, rec.Time, rec.Text)
			handled++
		case "link":
			b.AddLink(rec.From, rec.To)
			handled++
		case "retweet":
			// Reject retweets naming users with no prior activity BEFORE
			// AddRetweet interns them: a phantom user either vanishes in
			// the low-activity filter (silently discarding the diffusion
			// observation) or survives as an all-zero row that skews the
			// estimator. Out-of-range post indices are caught by the
			// builder itself.
			if unknown := firstUnknownUser(b, rec.Retweeters, rec.Ignorers); unknown != "" {
				skip("retweet of post %d names user %q with no prior post or link", rec.Post, unknown)
				continue
			}
			if err := b.AddRetweet(rec.Post, rec.Retweeters, rec.Ignorers); err != nil {
				skip("%v", err)
				continue
			}
			handled++
		default:
			skip("unknown record type %q", rec.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
	if skipped > 0 {
		log.Printf("summary: %d records ingested, %d malformed lines skipped (first at lines %v)",
			handled, skipped, firstBad)
	}
	return handled, skipped
}

// firstUnknownUser returns the first user in the given lists the builder
// has never seen, or "" when all are known.
func firstUnknownUser(b *corpus.Builder, lists ...[]string) string {
	for _, list := range lists {
		for _, u := range list {
			if !b.KnownUser(u) {
				return u
			}
		}
	}
	return ""
}

type daemonConfig struct {
	addr, modelPath, walDir, publish string
	foldEvery                        time.Duration
	shedPolicy                       string
	queueCap                         int
	retryAfter                       time.Duration
	sweeps, window                   int
	segBytes                         int64
	syncEvery                        int
	drainTimeout                     time.Duration
	brownoutProbe                    string
	brownoutEvery                    time.Duration
	logFormat, logLevel              string
}

// runDaemon is the -daemon entrypoint; it returns the process exit code
// so drain errors surface to the supervisor.
func runDaemon(cfg daemonConfig) int {
	logger := obs.NewLogger(os.Stderr, cfg.logFormat, obs.ParseLevel(cfg.logLevel))
	logf := obs.Printf(logger.With("component", "ingest"))

	if cfg.modelPath == "" {
		log.Print("daemon mode needs -model (the trained base model)")
		return 2
	}
	policy, err := ingest.ParsePolicy(cfg.shedPolicy)
	if err != nil {
		log.Print(err)
		return 2
	}
	base, err := loadModel(cfg.modelPath)
	if err != nil {
		log.Printf("load base model: %v", err)
		return 1
	}

	reg := obs.NewRegistry()
	metrics := ingest.NewMetrics(reg)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Fold-in is background-tier work: when a co-located coldserve
	// reports brownout L3+, the fold loop yields its CPU to scoring.
	var brownout func() int
	if cfg.brownoutProbe != "" {
		brownout = ingest.WatchBrownout(ctx, nil, cfg.brownoutProbe, cfg.brownoutEvery, logf)
	}

	ing, rec, err := ingest.New(ingest.Config{
		WALDir:       cfg.walDir,
		Base:         base,
		PublishPath:  cfg.publish,
		FoldEvery:    cfg.foldEvery,
		QueueCap:     cfg.queueCap,
		Policy:       policy,
		RetryAfter:   cfg.retryAfter,
		Sweeps:       cfg.sweeps,
		Window:       cfg.window,
		SegmentBytes: cfg.segBytes,
		SyncEvery:    cfg.syncEvery,
		Brownout:     brownout,
		Metrics:      metrics,
		Logf:         logf,
	})
	if err != nil {
		log.Printf("open ingester: %v", err)
		return 1
	}
	logger.Info("ingester recovered", "last_seq", rec.LastSeq,
		"segments", rec.Segments, "truncated_bytes", rec.TruncatedBytes,
		"quarantined", len(rec.Quarantined))

	ing.Start(ctx)

	srv := ingest.NewServer(ing, logf)
	srv.DrainTimeout = cfg.drainTimeout
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	logger.Info("firehose listening", "addr", ln.Addr().String(),
		"model", cfg.modelPath, "wal_dir", cfg.walDir, "publish", cfg.publish)
	if err := srv.Serve(ctx, ln); err != nil {
		log.Printf("serve: %v", err)
		return 1
	}
	logger.Info("shut down cleanly")
	return 0
}

// loadModel reads a base model, dispatching on extension like the
// serving tier does.
func loadModel(path string) (*core.Model, error) {
	if strings.EqualFold(filepath.Ext(path), ".gob") {
		return core.LoadModelGobFile(path)
	}
	return core.LoadModelFile(path)
}
