package main

import (
	"bytes"
	"log"
	"strings"
	"testing"

	"github.com/cold-diffusion/cold/internal/corpus"
)

func TestRunBatchStrictSkip(t *testing.T) {
	input := strings.Join([]string{
		`{"type":"post","user":"alice","time":100,"text":"hello cold world"}`,
		`{"type":"post","user":"bob","time":200,"text":"more words here"}`,
		`{"type":"link","from":"alice","to":"bob"}`,
		`{"type":"retweet","post":0,"retweeters":["bob"],"ignorers":[]}`,
		`{"type":"retweet","post":99,"retweeters":["bob"],"ignorers":[]}`,  // out-of-range post
		`{"type":"retweet","post":1,"retweeters":["mallory"],"ignorers":[]}`, // unknown retweeter
		`{"type":"retweet","post":1,"retweeters":["bob"],"ignorers":["eve"]}`, // unknown ignorer
		`{"type":"wibble"}`,  // unknown type
		`{"type":"post","user"`, // truncated JSON
		``,                      // blank lines are not records and not errors
		`{"type":"post","user":"carol","time":300,"text":"late but valid"}`,
	}, "\n")

	var logged bytes.Buffer
	log.SetOutput(&logged)
	defer log.SetOutput(log.Writer())

	b := corpus.NewBuilder()
	handled, skipped := runBatch(b, strings.NewReader(input))
	if handled != 5 {
		t.Errorf("handled = %d, want 5 (3 posts, 1 link, 1 retweet)", handled)
	}
	if skipped != 5 {
		t.Errorf("skipped = %d, want 5", skipped)
	}

	out := logged.String()
	for _, want := range []string{
		"line 5: skipped: corpus: retweet references unknown post 99",
		`line 6: skipped: retweet of post 1 names user "mallory" with no prior post or link`,
		`line 7: skipped: retweet of post 1 names user "eve" with no prior post or link`,
		`line 8: skipped: unknown record type "wibble"`,
		"line 9: skipped:",
		"summary: 5 records ingested, 5 malformed lines skipped (first at lines [5 6 7 8 9])",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q\ngot:\n%s", want, out)
		}
	}

	// The rejected users were never interned: the skip happened before
	// the builder could create phantom rows.
	for _, phantom := range []string{"mallory", "eve"} {
		if b.KnownUser(phantom) {
			t.Errorf("rejected user %q was interned anyway", phantom)
		}
	}

	// The surviving records build a coherent dataset.
	data, names, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if data.U != 3 || len(names) != 3 {
		t.Fatalf("built %d users %v, want alice/bob/carol", data.U, names)
	}
	if len(data.Retweets) != 1 {
		t.Fatalf("built %d retweet observations, want the 1 valid one", len(data.Retweets))
	}
}
