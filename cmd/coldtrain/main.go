// Command coldtrain fits a COLD model to a dataset and writes the model
// as JSON, printing the convergence trace.
//
// Usage:
//
//	coldtrain -data dataset.json -comms 6 -topics 8 -iters 60 -out model.json
//	coldtrain -data dataset.json -comms 6 -topics 8 -workers 4 -out model.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldtrain: ")

	dataPath := flag.String("data", "dataset.json", "input dataset (from coldgen)")
	comms := flag.Int("comms", 6, "number of communities C")
	topics := flag.Int("topics", 8, "number of topics K")
	iters := flag.Int("iters", 60, "Gibbs sweeps")
	burnIn := flag.Int("burnin", 0, "burn-in sweeps (default iters/2)")
	workers := flag.Int("workers", 1, ">1 uses the parallel GAS sampler")
	noLinks := flag.Bool("nolink", false, "train the COLD-NoLink ablation")
	seed := flag.Uint64("seed", 1, "sampler seed")
	out := flag.String("out", "model.json", "output model path")
	quiet := flag.Bool("q", false, "suppress the likelihood trace")
	flag.Parse()

	data, err := corpus.LoadFile(*dataPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(*comms, *topics)
	cfg.Iterations = *iters
	cfg.BurnIn = *burnIn
	if cfg.BurnIn == 0 {
		cfg.BurnIn = *iters / 2
	}
	cfg.Workers = *workers
	cfg.UseLinks = !*noLinks
	cfg.Seed = *seed

	model, stats, err := core.TrainWithStats(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for i, ll := range stats.Likelihood {
			if i%5 == 0 || i == len(stats.Likelihood)-1 {
				fmt.Fprintf(os.Stderr, "sweep %3d  loglik %.1f\n", i, ll)
			}
		}
		d := core.Diagnose(stats.Likelihood)
		fmt.Fprintf(os.Stderr, "diagnostics: converged@sweep=%d geweke_z=%.2f improvement=%.0f\n",
			d.ConvergedAt, d.GewekeZ, d.Improvement)
	}
	if err := model.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained C=%d K=%d in %v (%d samples averaged); wrote %s\n",
		cfg.C, cfg.K, stats.Elapsed.Round(1e6), stats.Samples, *out)
}
