// Command coldtrain fits a COLD model to a dataset and writes the model
// as JSON, printing the convergence trace. Training can periodically
// checkpoint its full sampler state; an interrupted run (Ctrl-C) stops
// at the next sweep boundary, saves what it has, and can later be
// resumed bit-identically with -resume.
//
// Usage:
//
//	coldtrain -data dataset.json -comms 6 -topics 8 -iters 60 -out model.json
//	coldtrain -data dataset.json -comms 6 -topics 8 -workers 4 -out model.json
//	coldtrain -data dataset.json -checkpoint-dir ckpt -checkpoint-every 10 -out model.json
//	coldtrain -data dataset.json -resume ckpt/sweep-00000030.ckpt -out model.json
//
// Every sweep emits a structured log record (duration, log-likelihood,
// samples) through -log-format/-log-level, and the run exports
// cold_train_* / cold_gas_* metrics: -metrics-every dumps the
// Prometheus text to stderr periodically, and -debug-addr serves it
// live together with net/http/pprof for profiling long runs.
//
// Robustness knobs:
//
//	-keep-checkpoints N   retain the N newest checkpoint generations
//	                      (older ones are GC'd after each save)
//	-sweep-timeout D      bound each parallel GAS phase at D; a sweep
//	                      that overruns is aborted and retried from the
//	                      last in-memory snapshot. Also arms a global
//	                      watchdog (budget 4×D) that fails the whole run
//	                      fast when no sweep completes — the safety net
//	                      for serial runs and non-GAS hangs.
//	-stall-grace D        declare a GAS worker stalled after D without
//	                      progress, independent of total phase duration
//
// Resuming from a directory picks the newest checkpoint generation that
// passes checksum validation: corrupt newer generations (torn write,
// bit flip) are quarantined aside with a .bad suffix and the run falls
// back to the previous valid one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/obs"
	"github.com/cold-diffusion/cold/internal/supervise"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coldtrain: ")

	dataPath := flag.String("data", "dataset.json", "input dataset (from coldgen)")
	comms := flag.Int("comms", 6, "number of communities C")
	topics := flag.Int("topics", 8, "number of topics K")
	iters := flag.Int("iters", 60, "Gibbs sweeps")
	burnIn := flag.Int("burnin", 0, "burn-in sweeps (default iters/2)")
	workers := flag.Int("workers", 1, ">1 uses the parallel GAS sampler")
	noLinks := flag.Bool("nolink", false, "train the COLD-NoLink ablation")
	seed := flag.Uint64("seed", 1, "sampler seed")
	out := flag.String("out", "model.json", "output model path")
	quiet := flag.Bool("q", false, "suppress the likelihood trace")
	ckptDir := flag.String("checkpoint-dir", "", "directory for periodic sampler checkpoints")
	ckptEvery := flag.Int("checkpoint-every", 10, "sweeps between checkpoints")
	keepCkpts := flag.Int("keep-checkpoints", 3, "checkpoint generations retained in -checkpoint-dir")
	sweepTimeout := flag.Duration("sweep-timeout", 0, "deadline per parallel GAS phase; also arms a global training watchdog at 4x this (0 disables)")
	stallGrace := flag.Duration("stall-grace", 0, "max GAS worker silence before the sweep is aborted and retried (0 disables)")
	resume := flag.String("resume", "", "checkpoint file (or directory of them) to resume from")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	metricsEvery := flag.Duration("metrics-every", 0, "interval between Prometheus metric dumps to stderr (0 disables)")
	debugAddr := flag.String("debug-addr", "", "optional listener for pprof + expvar + /metrics during training")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context; training stops at the next
	// sweep boundary and returns a usable partial model.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	data, err := corpus.LoadFile(*dataPath)
	if err != nil {
		log.Fatal(err)
	}

	level := obs.ParseLevel(*logLevel)
	if *quiet && *logLevel == "info" {
		// -q mutes the per-sweep records too, unless -log-level asks
		// for them explicitly.
		level = obs.ParseLevel("warn")
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)
	reg := obs.NewRegistry()
	opts := core.RunOptions{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		KeepCheckpoints: *keepCkpts,
		SweepTimeout:    *sweepTimeout,
		StallGrace:      *stallGrace,
		Observer:        core.NewTrainObserver(reg),
		Logger:          logger,
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatalf("debug listener: %v", err)
		}
		logger.Info("debug listener up (pprof, expvar, metrics)", "addr", ln.Addr().String())
		go func() { _ = http.Serve(ln, obs.DebugMux(reg)) }()
	}
	if *metricsEvery > 0 {
		go func() {
			t := time.NewTicker(*metricsEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					fmt.Fprintln(os.Stderr, "--- metrics ---")
					_ = reg.WritePrometheus(os.Stderr)
				}
			}
		}()
	}

	var model *core.Model
	var stats *core.TrainStats
	train := func(ctx context.Context) error {
		var terr error
		if *resume != "" {
			path := *resume
			if fi, serr := os.Stat(path); serr == nil && fi.IsDir() {
				if opts.CheckpointDir == "" {
					// Keep checkpointing where the interrupted run left off.
					opts.CheckpointDir = path
				}
				// Directory resume walks back to the newest generation
				// that validates, quarantining corrupt ones aside.
				model, stats, terr = core.ResumeTrainingLatest(ctx, path, data, opts)
				return terr
			}
			if opts.CheckpointDir == "" {
				opts.CheckpointDir = filepath.Dir(path)
			}
			model, stats, terr = core.ResumeTraining(ctx, path, data, opts)
			return terr
		}
		cfg := core.DefaultConfig(*comms, *topics)
		cfg.Iterations = *iters
		cfg.BurnIn = *burnIn
		if cfg.BurnIn == 0 {
			cfg.BurnIn = *iters / 2
		}
		cfg.Workers = *workers
		cfg.UseLinks = !*noLinks
		cfg.Seed = *seed
		model, stats, terr = core.TrainRun(ctx, data, cfg, opts)
		return terr
	}

	if *sweepTimeout > 0 {
		// Global training watchdog: the GAS supervisor covers hung
		// workers inside a parallel sweep, but a serial run (or a hang
		// outside the engines) would still block forever. The heartbeat
		// beats once per completed sweep attempt; 4x the per-phase
		// deadline comfortably covers one full sweep plus likelihood
		// evaluation, so silence past the budget means the run is wedged
		// and failing fast beats hanging a training cluster slot.
		hb := &supervise.Heartbeat{}
		opts.Heartbeat = hb
		budget := 4 * *sweepTimeout
		err = supervise.Run(ctx, supervise.Config{
			Budget: budget,
			OnStall: func(silent time.Duration) {
				logger.Error("training watchdog tripped", "silent", silent.Round(time.Millisecond), "budget", budget)
			},
		}, hb, train)
		if errors.Is(err, supervise.ErrStalled) {
			// The wedged training goroutine may be leaked and still
			// writing model/stats; exit without touching them.
			log.Fatal(err)
		}
	} else {
		err = train(ctx)
	}

	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		log.Fatal(err)
	}
	if !*quiet && stats != nil {
		for i, ll := range stats.Likelihood {
			if i%5 == 0 || i == len(stats.Likelihood)-1 {
				fmt.Fprintf(os.Stderr, "sweep %3d  loglik %.1f\n", i, ll)
			}
		}
		d := core.Diagnose(stats.Likelihood)
		fmt.Fprintf(os.Stderr, "diagnostics: converged@sweep=%d geweke_z=%.2f improvement=%.0f\n",
			d.ConvergedAt, d.GewekeZ, d.Improvement)
		if stats.Rollbacks > 0 {
			fmt.Fprintf(os.Stderr, "recovered from %d divergence rollback(s)\n", stats.Rollbacks)
		}
		if stats.Stalls > 0 {
			fmt.Fprintf(os.Stderr, "recovered from %d stalled sweep(s)\n", stats.Stalls)
		}
		if stats.CheckpointFailures > 0 {
			fmt.Fprintf(os.Stderr, "tolerated %d checkpoint write failure(s)\n", stats.CheckpointFailures)
		}
		if len(stats.Quarantined) > 0 {
			fmt.Fprintf(os.Stderr, "quarantined %d corrupt checkpoint(s): %v\n", len(stats.Quarantined), stats.Quarantined)
		}
	}
	if interrupted {
		if stats != nil && stats.LastCheckpoint != "" {
			fmt.Fprintf(os.Stderr, "interrupted; resume with -resume %s\n", stats.LastCheckpoint)
		} else {
			fmt.Fprintln(os.Stderr, "interrupted; no checkpoint was written (set -checkpoint-dir)")
		}
		if model == nil {
			log.Fatal("interrupted before the first post-burn-in sample; no model to save")
		}
		fmt.Fprintln(os.Stderr, "saving partial model averaged from samples so far")
	}
	if err := model.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained C=%d K=%d in %v (%d samples averaged); wrote %s\n",
		model.Cfg.C, model.Cfg.K, stats.Elapsed.Round(1e6), stats.Samples, *out)
}
