package cold_test

import (
	"context"
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cold "github.com/cold-diffusion/cold"
)

// TestTrainOptions drives the functional-options entry point end to
// end: stats, checkpoints, metrics and structured logs from one call.
func TestTrainOptions(t *testing.T) {
	data, _, err := cold.Synthesize(cold.SynthConfig{U: 50, C: 3, K: 4, T: 8, V: 100,
		PostsPerUser: 6, WordsPerPost: 5, LinksPerUser: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cold.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 12, 6, 5

	dir := t.TempDir()
	reg := cold.NewRegistry()
	var logBuf strings.Builder
	var st cold.TrainStats
	model, err := cold.Train(context.Background(), data, cfg,
		cold.WithStats(&st),
		cold.WithCheckpoints(dir, 4),
		cold.WithObserver(cold.NewTrainObserver(reg)),
		cold.WithLogger(slog.New(slog.NewJSONHandler(&logBuf, nil))))
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || st.Sweeps != 12 {
		t.Fatalf("model=%v sweeps=%d, want trained model with 12 sweeps", model, st.Sweeps)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files written (err=%v)", err)
	}
	var expo strings.Builder
	reg.WritePrometheus(&expo)
	for _, want := range []string{"cold_train_sweep_seconds", "cold_train_log_likelihood"} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	if !strings.Contains(logBuf.String(), `"log_likelihood"`) {
		t.Error("structured log missing per-sweep records")
	}

	// The identical run through the deprecated positional wrapper agrees
	// sweep for sweep (the wrappers are thin shims, not a fork).
	//lint:ignore SA1019 comparing the wrapper against the options API
	_, st2, err := cold.TrainWithStats(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Sweeps != st.Sweeps || len(st2.Likelihood) != len(st.Likelihood) {
		t.Fatalf("wrapper diverged: %d/%d sweeps, %d/%d trace points",
			st2.Sweeps, st.Sweeps, len(st2.Likelihood), len(st.Likelihood))
	}
}

// TestSentinelErrors pins that the exported sentinels survive wrapping
// through the internal layers and match with errors.Is.
func TestSentinelErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.LoadCheckpoint(bad); !errors.Is(err, cold.ErrCorruptCheckpoint) {
		t.Errorf("LoadCheckpoint(garbage) = %v, want ErrCorruptCheckpoint", err)
	}

	data, _, err := cold.Synthesize(cold.SmallSynth(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := cold.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 6, 3, 1
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatalf("fresh model failed validation: %v", err)
	}
	model.Theta = nil
	if err := model.Validate(); !errors.Is(err, cold.ErrInvalidModel) {
		t.Errorf("Validate(broken) = %v, want ErrInvalidModel", err)
	}
}
