package cold_test

import (
	"testing"

	cold "github.com/cold-diffusion/cold"
)

// TestPublicAPIRoundTrip exercises the full public surface the way a
// downstream user would: synthesize → train → predict → analyse.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := cold.SynthConfig{U: 60, C: 3, K: 4, T: 8, V: 120,
		PostsPerUser: 8, WordsPerPost: 6, LinksPerUser: 5, Seed: 3}
	data, gt, err := cold.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gt == nil || len(gt.Primary) != data.U {
		t.Fatal("ground truth missing")
	}

	mcfg := cold.DefaultConfig(3, 4)
	mcfg.Iterations, mcfg.BurnIn, mcfg.Seed = 15, 8, 7
	//lint:ignore SA1019 the deprecated wrapper must keep working
	model, stats, err := cold.TrainWithStats(data, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sweeps != 15 {
		t.Fatalf("sweeps %d", stats.Sweeps)
	}

	pred := cold.NewPredictor(model, 5)
	if len(data.Retweets) > 0 {
		rt := data.Retweets[0]
		words := data.Posts[rt.Post].Words
		s := pred.Score(rt.Publisher, rt.Retweeters[0], words)
		if s < 0 || s > 1 {
			t.Fatalf("score %v out of range", s)
		}
	}

	// Analysis methods are reachable from the facade's Model.
	if z := model.Zeta(0, 0, 1); z < 0 || z > 1 {
		t.Fatalf("zeta %v", z)
	}
	if top := model.TopCommunities(0, 2); len(top) != 2 {
		t.Fatalf("top communities %v", top)
	}
	if lag := model.PopularityLag(0, 1, 1e-4); len(lag.HighCurve) != data.T {
		t.Fatal("lag curve wrong length")
	}

	// Persistence via the facade.
	dir := t.TempDir()
	if err := data.SaveFile(dir + "/d.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.LoadDataset(dir + "/d.json"); err != nil {
		t.Fatal(err)
	}
	if err := model.SaveFile(dir + "/m.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.LoadModel(dir + "/m.json"); err != nil {
		t.Fatal(err)
	}
}

func TestPresets(t *testing.T) {
	for _, cfg := range []cold.SynthConfig{cold.SmallSynth(1), cold.MediumSynth(1), cold.LargeSynth(1)} {
		if cfg.U == 0 || cfg.C == 0 || cfg.K == 0 {
			t.Fatalf("empty preset %+v", cfg)
		}
	}
	small, medium, large := cold.SmallSynth(1), cold.MediumSynth(1), cold.LargeSynth(1)
	if !(small.U < medium.U && medium.U < large.U) {
		t.Fatal("presets not increasing")
	}
}

func TestEventSynthFacade(t *testing.T) {
	cfg := cold.EventSynth(3)
	cfg.Base.U, cfg.Base.PostsPerUser = 60, 6
	data, gt, event, err := cold.SynthesizeEvent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if event != cfg.Base.K-1 {
		t.Fatalf("event topic %d", event)
	}
	if data.U != 60 || len(gt.PostZ) != len(data.Posts) {
		t.Fatal("event facade wiring broken")
	}
}
