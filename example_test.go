package cold_test

import (
	"context"
	"fmt"

	cold "github.com/cold-diffusion/cold"
)

// ExampleTrain shows the minimal synthesize → train → inspect loop.
func ExampleTrain() {
	data, _, err := cold.Synthesize(cold.SynthConfig{
		U: 60, C: 3, K: 4, T: 8, V: 120,
		PostsPerUser: 8, WordsPerPost: 6, LinksPerUser: 5, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	cfg := cold.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 15, 8, 7
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("communities:", model.Cfg.C)
	fmt.Println("topics:", model.Cfg.K)
	fmt.Println("membership rows:", len(model.Pi))
	// Output:
	// communities: 3
	// topics: 4
	// membership rows: 60
}

// ExampleNewPredictor scores a diffusion candidate with the two-step
// method of the paper's §5.2.
func ExampleNewPredictor() {
	data, _, err := cold.Synthesize(cold.SynthConfig{
		U: 60, C: 3, K: 4, T: 8, V: 120,
		PostsPerUser: 8, WordsPerPost: 6, LinksPerUser: 5, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	cfg := cold.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 15, 8, 7
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		panic(err)
	}
	pred := cold.NewPredictor(model, 5)
	rt := data.Retweets[0]
	score := pred.Score(rt.Publisher, rt.Retweeters[0], data.Posts[rt.Post].Words)
	fmt.Println("score in range:", score >= 0 && score <= 1)
	// Output:
	// score in range: true
}

// ExampleModel_Zeta derives the topic-sensitive community-level
// influence strength of Eq. (4).
func ExampleModel_Zeta() {
	data, _, err := cold.Synthesize(cold.SynthConfig{
		U: 60, C: 3, K: 4, T: 8, V: 120,
		PostsPerUser: 8, WordsPerPost: 6, LinksPerUser: 5, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	cfg := cold.DefaultConfig(3, 4)
	cfg.Iterations, cfg.BurnIn, cfg.Seed = 15, 8, 7
	model, err := cold.Train(context.Background(), data, cfg)
	if err != nil {
		panic(err)
	}
	z := model.Zeta(0, 1, 2) // topic 0, community 1 → community 2
	manual := model.Theta[1][0] * model.Theta[2][0] * model.Eta[1][2]
	fmt.Println("zeta equals theta*theta*eta:", z == manual)
	// Output:
	// zeta equals theta*theta*eta: true
}

// ExampleBuilder ingests raw social records the way cmd/coldingest does.
func ExampleBuilder() {
	b := cold.NewBuilder()
	b.TimeSlices = 4
	post := b.AddPost("alice", 1000, "community level diffusion extraction")
	b.AddPost("bob", 2000, "topic models over social networks")
	b.AddLink("alice", "bob")
	if err := b.AddRetweet(post, []string{"bob"}, nil); err != nil {
		panic(err)
	}
	data, names, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("users:", len(names))
	fmt.Println("posts:", len(data.Posts))
	fmt.Println("links:", len(data.Links))
	// Output:
	// users: 2
	// posts: 2
	// links: 1
}
