// Package cold is the public API of the COLD (COmmunity Level Diffusion)
// library, a from-scratch implementation of "Community Level Diffusion
// Extraction" (Hu, Yao, Cui, Xing — SIGMOD 2015).
//
// COLD is a generative latent-variable model jointly over the text, time
// stamps and interaction network of a social stream. Training extracts:
//
//   - overlapping communities with per-user membership vectors π,
//   - topics with word distributions φ,
//   - each community's interest mixture over topics θ,
//   - community-specific temporal topic dynamics ψ, and
//   - inter-community influence strengths η,
//
// from which the topic-sensitive community-level diffusion strengths
// ζ_kcc' = θ_ck·θ_c'k·η_cc' are derived (Eq. 4 of the paper). On top of
// the extraction the package offers the paper's diffusion prediction
// method (will user i' retweet post d from user i?), link prediction,
// time-stamp prediction, diffusion-pattern analyses, and influential
// community identification via the Independent Cascade model.
//
// # Quickstart
//
//	data, _, err := cold.Synthesize(cold.SmallSynth(1))
//	if err != nil { ... }
//	model, err := cold.Train(ctx, data, cold.DefaultConfig(6, 8))
//	if err != nil { ... }
//	pred := cold.NewPredictor(model, 5)
//	p := pred.Score(alice, bob, post.Words) // diffusion probability
//
// Train takes functional options for everything beyond the basic fit —
// convergence stats, periodic checkpointing, metrics and structured
// logging:
//
//	var st cold.TrainStats
//	reg := cold.NewRegistry()
//	model, err := cold.Train(ctx, data, cfg,
//		cold.WithStats(&st),
//		cold.WithCheckpoints("ckpt/", 10),
//		cold.WithObserver(cold.NewTrainObserver(reg)),
//		cold.WithLogger(slog.Default()))
//
// Training is deterministic for a fixed Config.Seed. Set Config.Workers
// > 1 to use the parallel gather–apply–scatter sampler (an in-process
// equivalent of the paper's GraphLab implementation).
package cold

import (
	"context"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/corpus"
	"github.com/cold-diffusion/cold/internal/synth"
)

// Config configures the COLD model: dimensions (C communities, K
// topics), Dirichlet/Beta hyper-parameters (zero values take the paper's
// defaults), the Gibbs schedule, and the worker count.
type Config = core.Config

// Model holds trained posterior estimates (Pi, Theta, Phi, Psi, Eta) and
// implements prediction and analysis methods.
type Model = core.Model

// TrainStats reports the per-sweep likelihood trace and timing.
type TrainStats = core.TrainStats

// Predictor evaluates the two-step diffusion prediction method (Eqs.
// 5–7) with offline-cached per-user top communities.
type Predictor = core.Predictor

// Dataset is a social stream: users, time-stamped bag-of-words posts,
// interaction links, and retweet records.
type Dataset = corpus.Dataset

// Post is one time-stamped bag-of-words post.
type Post = corpus.Post

// Retweet is one diffusion record: publisher, post and the followers who
// did / did not spread it.
type Retweet = corpus.Retweet

// SynthConfig controls the synthetic social-stream generator used by the
// examples and benchmarks (the stand-in for the paper's Weibo crawls).
type SynthConfig = synth.Config

// GroundTruth carries the generator's planted parameters for recovery
// scoring.
type GroundTruth = synth.GroundTruth

// DefaultConfig returns a Config with the paper's hyper-parameter policy
// for the given community and topic counts.
func DefaultConfig(c, k int) Config { return core.DefaultConfig(c, k) }

// Train fits COLD and returns the averaged posterior estimates. It
// stops at the next sweep boundary when ctx is cancelled, returning the
// model averaged from the samples collected so far alongside ctx.Err()
// (the model is nil only if cancellation struck before the first
// post-burn-in sample). Behaviour beyond the basic fit is selected with
// TrainOption values: WithStats, WithCheckpoints, WithObserver,
// WithLogger, WithRunOptions.
func Train(ctx context.Context, data *Dataset, cfg Config, options ...TrainOption) (*Model, error) {
	var s trainSettings
	for _, o := range options {
		o(&s)
	}
	m, st, err := core.TrainRun(ctx, data, cfg, s.run)
	if s.stats != nil && st != nil {
		*s.stats = *st
	}
	return m, err
}

// TrainWithStats fits COLD and returns the convergence/timing trace.
//
// Deprecated: use Train with WithStats.
func TrainWithStats(data *Dataset, cfg Config) (*Model, *TrainStats, error) {
	return core.TrainWithStats(data, cfg)
}

// RunOptions configures the resilient training runtime: periodic
// checkpointing to disk and divergence-recovery policy. The zero value
// trains without checkpoints.
type RunOptions = core.RunOptions

// Checkpoint is the on-disk training snapshot written by TrainRun;
// LoadCheckpoint inspects one without resuming.
type Checkpoint = core.Checkpoint

// TrainContext fits COLD with cancellation.
//
// Deprecated: Train now takes a context directly.
func TrainContext(ctx context.Context, data *Dataset, cfg Config) (*Model, error) {
	return core.TrainContext(ctx, data, cfg)
}

// TrainRun is the positional full-control entry point: context
// cancellation, periodic checkpoints, and automatic rollback on
// numerical divergence.
//
// Deprecated: use Train with WithRunOptions (or WithCheckpoints and
// WithStats for the common cases).
func TrainRun(ctx context.Context, data *Dataset, cfg Config, opts RunOptions) (*Model, *TrainStats, error) {
	return core.TrainRun(ctx, data, cfg, opts)
}

// ResumeTraining continues a run from a checkpoint file written by
// TrainRun. Resuming against the same dataset reproduces the
// uninterrupted run bit for bit.
func ResumeTraining(ctx context.Context, path string, data *Dataset, opts RunOptions) (*Model, *TrainStats, error) {
	return core.ResumeTraining(ctx, path, data, opts)
}

// ResumeTrainingLatest continues a run from the newest valid checkpoint
// generation in dir. Generations that fail checksum validation (torn
// write, bit flip, truncation) are quarantined aside with a .bad suffix
// and the walk falls back to the previous generation, so one corrupt
// file costs at most a checkpoint interval of redone work. Resuming
// from any valid generation keeps the bit-identical-replay guarantee.
func ResumeTrainingLatest(ctx context.Context, dir string, data *Dataset, opts RunOptions) (*Model, *TrainStats, error) {
	return core.ResumeTrainingLatest(ctx, dir, data, opts)
}

// LoadCheckpoint reads and validates a checkpoint file without resuming.
func LoadCheckpoint(path string) (*Checkpoint, error) { return core.LoadCheckpoint(path) }

// NewPredictor builds the offline caches for diffusion prediction.
// topComm is the TopComm size; the paper uses 5.
func NewPredictor(m *Model, topComm int) *Predictor { return core.NewPredictor(m, topComm) }

// Synthesize generates a synthetic dataset with planted communities,
// topics, temporal bursts and retweet cascades.
func Synthesize(cfg SynthConfig) (*Dataset, *GroundTruth, error) { return synth.Generate(cfg) }

// EventSynthConfig configures the breaking-news scenario generator.
type EventSynthConfig = synth.EventConfig

// SynthesizeEvent generates a stream whose final topic is a breaking
// event sweeping across communities in adoption order; it returns the
// dataset, ground truth and the event topic index.
func SynthesizeEvent(cfg EventSynthConfig) (*Dataset, *GroundTruth, int, error) {
	return synth.GenerateEvent(cfg)
}

// EventSynth is the breaking-news scenario preset.
func EventSynth(seed uint64) EventSynthConfig { return synth.EventStream(seed) }

// SmallSynth, MediumSynth and LargeSynth are generator presets.
func SmallSynth(seed uint64) SynthConfig { return synth.Small(seed) }

// MediumSynth is the mid-size generator preset.
func MediumSynth(seed uint64) SynthConfig { return synth.Medium(seed) }

// LargeSynth is the scaling-experiment generator preset.
func LargeSynth(seed uint64) SynthConfig { return synth.Large(seed) }

// FoldInPost is one post by a previously unseen user, for fold-in
// membership inference against a trained model.
type FoldInPost = core.FoldInPost

// Diagnostics summarises a training run's likelihood trace.
type Diagnostics = core.Diagnostics

// Diagnose analyses a likelihood trace from TrainStats.
func Diagnose(likelihood []float64) Diagnostics { return core.Diagnose(likelihood) }

// Builder assembles a Dataset from raw social records (string user
// names, free-text posts with unix time stamps, links and retweet
// outcomes), applying the paper's preprocessing: tokenisation with
// stop-word removal, low-activity user filtering, vocabulary pruning and
// time discretisation.
type Builder = corpus.Builder

// NewBuilder returns a dataset builder with the default preprocessing
// policy.
func NewBuilder() *Builder { return corpus.NewBuilder() }

// LoadDataset reads a JSON dataset from a file.
func LoadDataset(path string) (*Dataset, error) { return corpus.LoadFile(path) }

// LoadModel reads a JSON model from a file.
func LoadModel(path string) (*Model, error) { return core.LoadModelFile(path) }
