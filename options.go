package cold

import (
	"log/slog"
	"time"

	"github.com/cold-diffusion/cold/internal/core"
	"github.com/cold-diffusion/cold/internal/obs"
)

// Registry collects metric instruments and renders them in Prometheus
// text exposition format (WritePrometheus / Handler). Create one with
// NewRegistry, pass it to NewTrainObserver, and mount Handler on an HTTP
// mux to scrape training metrics.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// TrainObserver is the training-side instrument set (cold_train_* and
// cold_gas_* metric families): per-sweep duration and likelihood,
// checkpoint I/O timings, rollback/resume counters, and GAS worker
// busy/barrier-wait histograms for parallel runs. Build one with
// NewTrainObserver and attach it with WithObserver.
type TrainObserver = core.TrainObserver

// NewTrainObserver registers the training instrument set on reg.
func NewTrainObserver(reg *Registry) *TrainObserver { return core.NewTrainObserver(reg) }

// TrainOption customises a Train run. The zero set of options trains in
// the foreground with no checkpoints, no metrics and no logging —
// identical to the original positional Train.
type TrainOption func(*trainSettings)

type trainSettings struct {
	stats *TrainStats
	run   RunOptions
}

// WithStats copies the run's convergence/timing trace into *st before
// Train returns. st must be non-nil.
func WithStats(st *TrainStats) TrainOption {
	return func(s *trainSettings) { s.stats = st }
}

// WithCheckpoints writes a full sampler-state checkpoint into dir every
// `every` sweeps (every <= 0 uses the default interval). Checkpoints
// enable ResumeTraining and automatic divergence rollback.
func WithCheckpoints(dir string, every int) TrainOption {
	return func(s *trainSettings) {
		s.run.CheckpointDir = dir
		s.run.CheckpointEvery = every
	}
}

// WithObserver streams run metrics (sweep durations, likelihood,
// rollbacks, checkpoint I/O, GAS worker timings) into obs's registry.
func WithObserver(obs *TrainObserver) TrainOption {
	return func(s *trainSettings) { s.run.Observer = obs }
}

// WithLogger emits one structured record per sweep plus lifecycle
// events (checkpoints, rollbacks, resume) through l.
func WithLogger(l *slog.Logger) TrainOption {
	return func(s *trainSettings) { s.run.Logger = l }
}

// WithRetention keeps the n newest checkpoint generations on disk;
// older ones are garbage-collected after each successful save (n <= 0
// uses the default of 3). More generations buy deeper fallback when the
// newest file is corrupted at resume time.
func WithRetention(n int) TrainOption {
	return func(s *trainSettings) { s.run.KeepCheckpoints = n }
}

// WithSupervision arms the training stall supervisor for parallel runs:
// each GAS phase must finish within sweepTimeout, and every worker must
// make progress at least every stallGrace. A tripped bound aborts the
// sweep, rebuilds the sampler from the last in-memory snapshot and
// retries, preserving the deterministic trajectory (no reseed). Zero
// durations disable the respective bound.
func WithSupervision(sweepTimeout, stallGrace time.Duration) TrainOption {
	return func(s *trainSettings) {
		s.run.SweepTimeout = sweepTimeout
		s.run.StallGrace = stallGrace
	}
}

// WithRunOptions replaces the full resilience configuration (rollback
// policy, checkpoint retention, divergence threshold, stall
// supervision) in one call. Options applied after it still override
// individual fields.
func WithRunOptions(o RunOptions) TrainOption {
	return func(s *trainSettings) { s.run = o }
}
